"""Tests for the span/counter tracer and its disabled twin."""

import json

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    bucket_percentile,
)
from repro.parallel.runtime import Runtime
from tests.conftest import ring_of_cliques_graph


class TestSpanTree:
    def test_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner2"):
                pass
        (outer,) = t.root.children
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner2"]

    def test_span_records_seconds(self):
        t = Tracer()
        with t.span("s"):
            pass
        (s,) = t.root.children
        assert s.seconds >= 0.0
        assert s._start is None  # closed

    def test_attrs_via_kwargs_and_set(self):
        t = Tracer()
        with t.span("s", engine="batch") as s:
            s.set(iterations=3)
        (s,) = t.root.children
        assert s.attrs == {"engine": "batch", "iterations": 3}

    def test_push_pop_equivalent_to_with(self):
        t = Tracer()
        s = t.push("pass", index=0)
        t.count("inside", 2)
        t.pop()
        assert t.current is t.root
        assert s.counters == {"inside": 2.0}
        assert s.seconds >= 0.0

    def test_pop_on_empty_stack_is_safe(self):
        t = Tracer()
        t.pop()  # nothing pushed; must not raise or pop the root
        assert t.current is t.root

    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("s"):
                raise RuntimeError("boom")
        assert t.current is t.root
        assert t.root.children[0].seconds >= 0.0


class TestExceptionSafety:
    """A span whose body raises must still record seconds and close."""

    def test_raising_span_records_seconds_and_emits(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("s"):
                raise ValueError("boom")
        (s,) = t.root.children
        assert s.seconds > 0.0
        assert s._start is None  # closed, not still ticking
        # The emitted trace carries the span with its seconds.
        doc = t.to_dict()
        assert doc["spans"][0]["name"] == "s"
        assert doc["spans"][0]["seconds"] == s.seconds

    def test_span_unwinds_unpopped_inner_pushes(self):
        """An exception between push() and pop() must not corrupt the
        stack: the context manager closes every span down to its own."""
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                t.push("inner")
                t.push("innermost")
                raise RuntimeError("boom")
        assert t.current is t.root
        (outer,) = t.root.children
        (inner,) = outer.children
        (innermost,) = inner.children
        for s in (outer, inner, innermost):
            assert s.seconds > 0.0
            assert s._start is None

    def test_unwind_is_noop_for_closed_span(self):
        t = Tracer()
        with t.span("a") as a:
            pass
        t.unwind(a)  # already popped: must not touch the stack
        assert t.current is t.root

    def test_leiden_spans_close_when_phase_raises(self):
        """Regression: push()-opened run/pass spans close with seconds
        when a phase body raises mid-pass."""
        from unittest import mock

        from repro.core.config import LeidenConfig
        from repro.core.leiden import leiden
        from repro.parallel.runtime import Runtime

        graph = ring_of_cliques_graph()
        tracer = Tracer()
        rt = Runtime(num_threads=1, seed=1, tracer=tracer)
        with mock.patch("repro.core.leiden.local_move_batch",
                        side_effect=RuntimeError("boom")):
            with pytest.raises(RuntimeError):
                leiden(graph, LeidenConfig(seed=1), runtime=rt)
        assert tracer.current is tracer.root
        (run,) = tracer.root.children
        assert run.name == "leiden"
        assert run.seconds > 0.0 and run._start is None
        (pass_span,) = [c for c in run.children if c.name == "pass"]
        assert pass_span.seconds > 0.0 and pass_span._start is None
        mv = [c for c in pass_span.children if c.name == "local_move"]
        assert mv and mv[0].seconds > 0.0


class TestSeries:
    def test_record_appends_ordered_series(self):
        t = Tracer()
        with t.span("s") as s:
            t.record("dq", 0.5)
            t.record("dq", 0.25)
            t.record("visited", 10)
        assert s.series == {"dq": [0.5, 0.25], "visited": [10.0]}

    def test_series_serialized_in_span_dict(self):
        t = Tracer()
        with t.span("s"):
            t.record("dq", 1.0)
        span = t.to_dict()["spans"][0]
        assert span["series"] == {"dq": [1.0]}
        json.dumps(span)

    def test_empty_series_omitted(self):
        t = Tracer()
        with t.span("s"):
            pass
        assert "series" not in t.to_dict()["spans"][0]

    def test_null_tracer_record_is_noop(self):
        t = NullTracer()
        with t.span("s") as s:
            t.record("dq", 1.0)
            s.record("dq", 2.0)
        assert t.to_dict()["spans"] == []


class TestSpanPath:
    def test_path_joins_open_spans_with_index(self):
        t = Tracer()
        assert t.span_path() == ""
        with t.span("leiden"):
            with t.span("pass", index=1):
                with t.span("local_move"):
                    assert t.span_path() == "leiden/pass[1]/local_move"
            assert t.span_path() == "leiden"

    def test_null_tracer_path_empty(self):
        assert NullTracer().span_path() == ""

    def test_single_implementation_behind_both_tracers(self):
        # Regression: Tracer.span_path and NullTracer.span_path once
        # carried duplicated formatting logic that drifted; both must
        # delegate to format_span_path, the one the runtime's region
        # labels come from.
        from repro.observability.tracer import format_span_path

        t = Tracer()
        with t.span("leiden"):
            with t.span("pass", index=2):
                assert t.span_path() == format_span_path(t._stack[1:])
        assert NullTracer().span_path() == format_span_path(())

    def test_runtime_region_labels_use_span_path_at_both_call_sites(self):
        # The two parallel/runtime.py call sites — parallel regions and
        # serial sections — must label profiler regions with the same
        # span path the tracer reports.
        import numpy as np

        from repro.observability.profiler import Profiler
        from repro.parallel.runtime import Runtime

        tracer = Tracer()
        profiler = Profiler(num_threads=2)
        rt = Runtime(num_threads=2, tracer=tracer, profiler=profiler)
        with tracer.span("leiden"):
            with tracer.span("pass", index=1):
                rt.record_parallel(np.ones(8), phase="local_move")
                rt.record_serial(4.0, phase="aggregate")
        assert {r.label for r in profiler.regions} == {"leiden/pass[1]"}


class TestCounters:
    def test_count_lands_on_innermost_span(self):
        t = Tracer()
        with t.span("a"):
            t.count("x")
            with t.span("b"):
                t.count("x", 5)
        a = t.root.children[0]
        b = a.children[0]
        assert a.counters == {"x": 1.0}
        assert b.counters == {"x": 5.0}
        assert t.counter_totals() == {"x": 6.0}

    def test_observe_tracks_min_max_sum(self):
        t = Tracer()
        for v in (4.0, 1.0, 7.0):
            t.observe("batch_size", v)
        s = t.root.stats["batch_size"]
        assert s == {"count": 3.0, "sum": 12.0, "min": 1.0, "max": 7.0}

    def test_derived_pruning_hit_rate(self):
        t = Tracer()
        t.count("pruning_visited", 30)
        t.count("pruning_skipped", 70)
        assert t.derived_metrics()["pruning_hit_rate"] == pytest.approx(0.7)

    def test_derived_per_region_ratios(self):
        t = Tracer()
        t.count("parallel_regions", 4)
        t.count("atomic_ops", 40)
        t.count("clock_skew_units", 2.0)
        d = t.derived_metrics()
        assert d["atomics_per_region"] == pytest.approx(10.0)
        assert d["skew_units_per_region"] == pytest.approx(0.5)

    def test_derived_empty_without_counters(self):
        assert Tracer().derived_metrics() == {}


class TestObservationHistograms:
    def test_observe_fills_power_of_two_buckets(self):
        t = Tracer()
        for v in (0.4, 0.6, 3.0, 0.0):
            t.observe("lat", v)
        hist = t.root.buckets["lat"]
        # 0.4 -> 2^-1 bucket, 0.6 -> 2^0, 3.0 -> 2^2, 0.0 -> zero bucket
        assert hist[-1] == 1
        assert hist[0] == 1
        assert hist[2] == 1
        assert sum(hist.values()) == 4

    def test_bucket_totals_merge_subtree(self):
        t = Tracer()
        with t.span("a"):
            t.observe("lat", 1.0)
            with t.span("b"):
                t.observe("lat", 1.5)
        totals = t.root.bucket_totals()
        assert sum(totals["lat"].values()) == 2

    def test_bucket_percentile_nearest_rank(self):
        # 99 samples in bucket 0 (values ~0.75), 1 in bucket 10.
        buckets = {0: 99, 10: 1}
        assert bucket_percentile(buckets, 50.0) == pytest.approx(0.75)
        assert bucket_percentile(buckets, 100.0) == pytest.approx(768.0)
        assert bucket_percentile({}, 50.0) == 0.0

    def test_derived_metrics_expose_p50_p99(self):
        t = Tracer()
        for v in [0.001] * 98 + [1.0, 2.0]:
            t.observe("service_latency", v)
        d = t.derived_metrics()
        assert d["service_latency_p50"] == pytest.approx(0.75 * 2**-9)
        assert d["service_latency_p99"] >= 0.5

    def test_buckets_serialized_in_span_dict(self):
        t = Tracer()
        with t.span("s"):
            t.observe("x", 1.0)
        span = t.to_dict()["spans"][0]
        assert span["buckets"] == {"x": {"1": 1}}
        json.dumps(span)  # JSON-ready (string keys)

    def test_stats_dict_shape_unchanged_by_buckets(self):
        """The min/max/sum stats block keeps its exact legacy shape."""
        t = Tracer()
        t.observe("x", 2.0)
        assert t.root.stats["x"] == {
            "count": 1.0, "sum": 2.0, "min": 2.0, "max": 2.0}


class TestJsonEmission:
    def test_schema_and_shape(self):
        t = Tracer()
        with t.span("leiden"):
            t.count("c", 1)
        doc = json.loads(t.to_json(experiment="x", seed=42))
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["meta"] == {"experiment": "x", "seed": 42}
        assert doc["counters"] == {"c": 1.0}
        assert doc["spans"][0]["name"] == "leiden"

    def test_json_is_sorted_and_stable(self):
        t = Tracer()
        t.count("b", 1)
        t.count("a", 1)
        one = t.to_json(z=1, a=2)
        two = t.to_json(z=1, a=2)
        assert one == two
        assert one.index('"a"') < one.index('"b"')

    def test_empty_sections_omitted_per_span(self):
        t = Tracer()
        with t.span("bare"):
            pass
        span = t.to_dict()["spans"][0]
        assert "counters" not in span
        assert "stats" not in span
        assert "children" not in span


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_span_is_shared_noop(self):
        t = NullTracer()
        with t.span("a") as s1:
            s1.set(x=1)
            s1.count("c")
            s1.observe("o", 2.0)
        assert t.span("b") is s1  # one shared instance, no allocation
        assert t.push("c") is s1
        t.pop()

    def test_collects_nothing(self):
        t = NullTracer()
        with t.span("a"):
            t.count("x", 5)
            t.observe("y", 1.0)
        assert t.counter_totals() == {}
        assert t.derived_metrics() == {}
        doc = t.to_dict(meta_key="v")
        assert doc["spans"] == [] and doc["counters"] == {}


class TestLeidenIntegration:
    @pytest.fixture(scope="class")
    def traced(self):
        graph = ring_of_cliques_graph()
        tracer = Tracer()
        rt = Runtime(num_threads=1, seed=1, tracer=tracer)
        result = leiden(graph, LeidenConfig(seed=1), runtime=rt)
        return tracer, result

    def test_span_tree_is_run_pass_phase(self, traced):
        tracer, result = traced
        (run,) = tracer.root.children
        assert run.name == "leiden"
        passes = [c for c in run.children if c.name == "pass"]
        assert len(passes) == result.num_passes
        phases = {c.name for c in passes[0].children}
        assert {"init", "local_move", "refine", "aggregate"} <= phases

    def test_runtime_counters_flow_through(self, traced):
        tracer, _ = traced
        totals = tracer.counter_totals()
        assert totals["parallel_regions"] > 0
        assert totals["barriers"] > 0
        assert totals["atomic_ops"] > 0
        assert totals["work_units"] > 0
        assert totals["local_moves"] > 0

    def test_pass_spans_carry_attrs(self, traced):
        tracer, _ = traced
        (run,) = tracer.root.children
        first = next(c for c in run.children if c.name == "pass")
        assert first.attrs["index"] == 0
        assert "communities" in first.attrs

    def test_membership_identical_with_and_without_tracing(self):
        graph = ring_of_cliques_graph()
        plain = leiden(graph, LeidenConfig(seed=7))
        rt = Runtime(num_threads=1, seed=7, tracer=Tracer())
        traced = leiden(graph, LeidenConfig(seed=7), runtime=rt)
        assert np.array_equal(plain.membership, traced.membership)
