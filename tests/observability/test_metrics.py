"""Tests for the typed instrument registry and its exporters."""

import json

import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.errors import MetricsError
from repro.observability.metrics import (
    BUCKET_ZERO,
    METRICS_SCHEMA,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_of,
    bucket_percentile,
    exact_percentile,
    validate_prometheus,
)
from repro.observability.tracer import Tracer
from repro.parallel.runtime import Runtime
from tests.conftest import ring_of_cliques_graph


class TestCounter:
    def test_unlabeled(self):
        c = Counter("requests_total", "all requests")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled(self):
        c = Counter("requests_total", "", ("kind",))
        c.labels("query").inc(2)
        c.labels(kind="detect").inc()
        assert c.value("query") == 2.0
        assert c.value("detect") == 1.0

    def test_negative_inc_rejected(self):
        c = Counter("c_total")
        with pytest.raises(MetricsError):
            c.inc(-1.0)

    def test_unlabeled_use_of_labeled_rejected(self):
        c = Counter("c_total", "", ("kind",))
        with pytest.raises(MetricsError):
            c.inc()

    def test_wrong_label_count_rejected(self):
        c = Counter("c_total", "", ("a", "b"))
        with pytest.raises(MetricsError):
            c.labels("x")

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricsError):
            Counter("1bad")
        with pytest.raises(MetricsError):
            Counter("ok_total", "", ("__reserved",))
        with pytest.raises(MetricsError):
            Counter("ok_total", "", ("a", "a"))


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5)
        g.add(-2)
        assert g._values[()] == 3.0

    def test_labeled_set(self):
        g = Gauge("depth", "", ("q",))
        g.labels("main").set(7)
        g.labels("main").set(2)
        assert g._values[("main",)] == 2.0


class TestHistogram:
    def test_observe_and_percentile(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 100.0):
            h.observe(v)
        d = h._data[()]
        assert d.count == 4
        assert d.sum == 106.0
        assert d.min == 1.0 and d.max == 100.0
        # p50 and the tracer's bucket estimate agree by construction.
        assert h.percentile(50.0) == bucket_percentile(d.buckets, 50.0)

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(-3.0)
        assert h._data[()].buckets == {BUCKET_ZERO: 2}
        assert bucket_of(0.0) == BUCKET_ZERO


class TestCardinalityBound:
    def test_overflow_routes_to_single_series(self):
        c = Counter("c_total", "", ("user",), max_series=3)
        for i in range(10):
            c.labels(f"user{i}").inc()
        # 3 real series plus the shared overflow series.
        assert c._num_series() == 4
        assert c.value("_overflow") == 7.0
        assert c.overflowed == 7

    def test_existing_series_keep_working_past_bound(self):
        c = Counter("c_total", "", ("user",), max_series=2)
        c.labels("a").inc()
        c.labels("b").inc()
        c.labels("c").inc()  # overflow
        c.labels("a").inc()  # still routed to its own series
        assert c.value("a") == 2.0
        assert c.value("_overflow") == 1.0

    def test_overflow_counts_every_rejected_event(self):
        c = Counter("c_total", "", ("user",), max_series=1)
        c.labels("a").inc()
        c.labels("b").inc()
        c.labels("b").inc()
        assert c.overflowed == 2
        assert c.value("_overflow") == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help")
        b = r.counter("x_total")
        assert a is b
        assert len(r) == 1 and "x_total" in r

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(MetricsError):
            r.gauge("x_total")

    def test_label_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "", ("a",))
        with pytest.raises(MetricsError):
            r.counter("x_total", "", ("b",))

    def test_instruments_sorted_by_name(self):
        r = MetricsRegistry()
        r.counter("zz_total")
        r.gauge("aa")
        r.histogram("mm")
        assert [i.name for i in r.instruments()] == ["aa", "mm", "zz_total"]


class TestExactPercentile:
    def test_empty(self):
        assert exact_percentile([], 99.0) == 0

    def test_preserves_element_type(self):
        assert exact_percentile([3, 1, 2], 50.0) == 2
        assert isinstance(exact_percentile([3, 1, 2], 50.0), int)
        assert exact_percentile([1.5, 2.5], 99.0) == 2.5

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert exact_percentile(values, 50.0) == 50
        assert exact_percentile(values, 99.0) == 99
        assert exact_percentile(values, 100.0) == 100

    def test_matches_service_percentile_helper(self):
        from repro.service.server import percentile

        values = [5, 1, 9, 3, 7, 2, 8]
        for q in (50.0, 90.0, 99.0):
            assert percentile(values, q) == int(exact_percentile(values, q))


class TestExposition:
    def _populated(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests", ("kind",)).labels("query").inc(3)
        r.gauge("depth", "queue depth").set(2)
        h = r.histogram("lat_units", "latency", ("kind",))
        for v in (1.0, 4.0, 4.0, 100.0):
            h.labels("query").observe(v)
        return r

    def test_prometheus_golden(self):
        r = MetricsRegistry()
        r.counter("req_total", "all requests", ("kind",)).labels("q").inc(3)
        r.gauge("depth").set(2)
        h = r.histogram("lat")
        h.observe(1.0)
        h.observe(3.0)
        assert r.to_prometheus() == (
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="2"} 1\n'
            'lat_bucket{le="4"} 2\n'
            'lat_bucket{le="+Inf"} 2\n'
            "lat_sum 4\n"
            "lat_count 2\n"
            "# HELP req_total all requests\n"
            "# TYPE req_total counter\n"
            'req_total{kind="q"} 3\n'
        )

    def test_prometheus_validates(self):
        r = self._populated()
        report = validate_prometheus(r.to_prometheus())
        assert report["families"] == 3
        assert report["samples"] > 0

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus("not a metric line\n")

    def test_validator_rejects_non_monotonic_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 4\n"
                "h_count 5\n")
        with pytest.raises(ValueError):
            validate_prometheus(text)

    def test_exemplar_golden(self):
        r = MetricsRegistry()
        h = r.histogram("lat", "latency")
        h.observe(1.0, "aaaaaaaaaaaaaaaa")
        h.observe(3.0)  # no exemplar: bucket line stays bare
        h.observe(100.0, "bbbbbbbbbbbbbbbb")
        h.observe(120.0, "cccccccccccccccc")  # larger value wins the bucket
        assert r.to_prometheus() == (
            "# HELP lat latency\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="2"} 1 # {trace_id="aaaaaaaaaaaaaaaa"} 1\n'
            'lat_bucket{le="4"} 2\n'
            'lat_bucket{le="128"} 4 # {trace_id="cccccccccccccccc"} 120\n'
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum 224\n"
            "lat_count 4\n"
        )

    def test_exemplar_keep_rule_first_seen_wins_ties(self):
        r = MetricsRegistry()
        h = r.histogram("lat")
        h.observe(100.0, "aaaaaaaaaaaaaaaa")
        h.observe(100.0, "bbbbbbbbbbbbbbbb")  # equal value: keeps first
        assert 'trace_id="aaaaaaaaaaaaaaaa"' in r.to_prometheus()
        assert "bbbb" not in r.to_prometheus()

    def test_validator_counts_exemplars(self):
        r = MetricsRegistry()
        h = r.histogram("lat", "", ("kind",))
        h.labels("q").observe(2.0, "deadbeefdeadbeef")
        report = validate_prometheus(r.to_prometheus())
        assert report["exemplars"] == 1

    def test_validator_rejects_exemplar_off_bucket_lines(self):
        for line in ('c_total 1 # {trace_id="aaaaaaaaaaaaaaaa"} 1',
                     'h_sum 4 # {trace_id="aaaaaaaaaaaaaaaa"} 4'):
            family = ("# TYPE c_total counter\n" if line.startswith("c")
                      else "# TYPE h histogram\n"
                           'h_bucket{le="+Inf"} 1\n')
            with pytest.raises(ValueError, match="non-histogram-bucket"):
                validate_prometheus(family + line + "\n")

    def test_validator_rejects_malformed_exemplar(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="2"} 1 # trace_id=nolabels\n'
                'h_bucket{le="+Inf"} 1\n')
        with pytest.raises(ValueError, match="malformed exemplar"):
            validate_prometheus(text)

    def test_exemplars_survive_snapshot_roundtrip(self):
        r = MetricsRegistry()
        r.histogram("lat").observe(5.0, "feedfacefeedface")
        doc = r.to_snapshot(seed=0)
        series = doc["families"]["lat"]["series"][0]
        assert series["exemplars"] == {
            "3": {"trace_id": "feedfacefeedface", "value": 5.0}}

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("c_total", "", ("p",)).labels('a"b\\c\nd').inc()
        text = r.to_prometheus()
        assert 'p="a\\"b\\\\c\\nd"' in text
        validate_prometheus(text)

    def test_snapshot_schema_and_shape(self):
        r = self._populated()
        doc = r.to_snapshot(experiment="t", seed=1)
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["meta"] == {"experiment": "t", "seed": 1}
        assert set(doc["families"]) == {"req_total", "depth", "lat_units"}
        assert "lat_units_query_p99" in doc["derived"]

    def test_snapshot_double_run_byte_identical(self):
        docs = []
        for _ in range(2):
            docs.append(json.dumps(self._populated().to_snapshot(seed=3),
                                   sort_keys=True))
        assert docs[0] == docs[1]

    def test_prometheus_double_run_byte_identical(self):
        assert self._populated().to_prometheus() == \
            self._populated().to_prometheus()

    def test_overflow_reported_in_snapshot(self):
        r = MetricsRegistry(max_series_per_instrument=1)
        c = r.counter("c_total", "", ("u",))
        c.labels("a").inc()
        c.labels("b").inc()
        fam = r.to_snapshot()["families"]["c_total"]
        assert fam["overflowed"] == 1


class TestTracerReexport:
    def test_trace_and_metrics_percentiles_agree(self):
        graph = ring_of_cliques_graph()
        tracer = Tracer()
        registry = MetricsRegistry()
        rt = Runtime(num_threads=1, seed=7, tracer=tracer, metrics=registry)
        leiden(graph, LeidenConfig(seed=7), runtime=rt)
        names = registry.merge_tracer(tracer)
        assert names  # the run observed at least one distribution
        trace_derived = tracer.derived_metrics()
        reg_derived = registry.derived_metrics()
        for name in names:
            bare = name[len("trace_"):]
            for q in ("p50", "p99"):
                if f"{bare}_{q}" in trace_derived:
                    assert reg_derived[f"{name}_{q}"] == \
                        trace_derived[f"{bare}_{q}"]

    def test_exact_stats_survive_merge(self):
        t = Tracer()
        with t.span("s"):
            t.observe("batch_size", 4.0)
            t.observe("batch_size", 10.0)
        r = MetricsRegistry()
        r.merge_tracer(t)
        d = r.get("trace_batch_size")._data[()]
        assert d.count == 2
        assert d.sum == 14.0
        assert d.min == 4.0 and d.max == 10.0


class TestNullRegistry:
    def test_singleton_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)

    def test_factories_return_noops(self):
        c = NULL_REGISTRY.counter("x_total", "", ("a",))
        c.inc()
        c.labels("y").inc(5)
        assert c.value() == 0.0
        g = NULL_REGISTRY.gauge("g")
        g.set(3)
        h = NULL_REGISTRY.histogram("h")
        h.observe(1.0)
        assert h.percentile(99.0) == 0.0

    def test_exposition_is_empty(self):
        assert NULL_REGISTRY.to_prometheus() == ""
        doc = NULL_REGISTRY.to_snapshot(seed=1)
        assert doc["families"] == {}
        assert len(NULL_REGISTRY) == 0

    def test_runtime_defaults_to_null_registry(self):
        rt = Runtime(num_threads=1, seed=0)
        assert rt.metrics is NULL_REGISTRY


class TestRegistryMerge:
    def test_counters_sum_per_label_key(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("req_total", "reqs", ("kind",)).labels("query").inc(3)
        b.counter("req_total", "reqs", ("kind",)).labels("query").inc(4)
        b.counter("req_total", "reqs", ("kind",)).labels("detect").inc(1)
        merged = MetricsRegistry()
        names = merged.merge(a)
        names += merged.merge(b)
        assert "req_total" in names
        inst = merged.get("req_total")
        assert inst.value("query") == 7.0
        assert inst.value("detect") == 1.0

    def test_gauges_sum(self):
        # Documented fleet semantics: per-shard gauges (bytes, depth)
        # aggregate as their total.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("store_bytes").set(100)
        b.gauge("store_bytes").set(250)
        merged = MetricsRegistry()
        merged.merge(a)
        merged.merge(b)
        assert merged.get("store_bytes").value() == 350.0

    def test_histograms_merge_buckets_and_exact_stats(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", "latency", ("kind",))
        hb = b.histogram("lat", "latency", ("kind",))
        for v in (1.0, 2.0, 4.0):
            ha.labels("q").observe(v)
        for v in (8.0, 16.0):
            hb.labels("q").observe(v)
        merged = MetricsRegistry()
        merged.merge(a)
        merged.merge(b)
        d = merged.get("lat")._data[("q",)]
        assert d.count == 5
        assert d.sum == 31.0
        assert d.min == 1.0
        assert d.max == 16.0

    def test_empty_series_preserved_without_observations(self):
        a = MetricsRegistry()
        a.histogram("lat", "", ("kind",)).labels("idle")
        merged = MetricsRegistry()
        merged.merge(a)
        assert merged.get("lat")._data[("idle",)].count == 0

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("thing")
        b.gauge("thing")
        merged = MetricsRegistry()
        merged.merge(a)
        with pytest.raises(MetricsError):
            merged.merge(b)

    def test_merge_into_populated_registry(self):
        merged = MetricsRegistry()
        merged.counter("hits_total").inc(2)
        other = MetricsRegistry()
        other.counter("hits_total").inc(5)
        merged.merge(other)
        assert merged.get("hits_total").value() == 7.0

    def test_merged_snapshot_deterministic(self):
        def build():
            shard = MetricsRegistry()
            shard.counter("req_total", "", ("kind",)).labels("q").inc(2)
            shard.histogram("lat").observe(3.0)
            merged = MetricsRegistry()
            merged.merge(shard)
            return json.dumps(merged.to_snapshot(seed=0), sort_keys=True)

        assert build() == build()
