"""Tests for the tracing and perf-regression layer."""
