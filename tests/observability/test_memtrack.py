"""Tests for the deterministic memory ledger (repro.observability.memtrack)."""

import json

import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.observability import memtrack
from repro.observability.memtrack import (
    MEMORY_SCHEMA,
    NULL_LEDGER,
    MemoryLedger,
    NullLedger,
    activate,
    active_ledger,
    merge_memory_snapshots,
    record_csr,
    validate_memory_doc,
)
from repro.observability.profiler import validate_chrome_trace
from repro.parallel.runtime import Runtime
from tests.conftest import random_graph, two_cliques_graph


class TestLedgerAccounting:
    def test_alloc_free_roundtrip(self):
        led = MemoryLedger()
        h = led.alloc("csr", "offsets", 800, phase="other", dtype="int64")
        assert led.live_bytes() == 800
        assert led.peak_bytes() == 800
        led.free(h)
        assert led.live_bytes() == 0
        assert led.peak_bytes() == 800  # watermark survives the free

    def test_resize_moves_live_and_peak(self):
        led = MemoryLedger()
        h = led.alloc("store", "entry", 100)
        led.resize(h, 300)
        assert led.live_bytes() == 300
        assert led.peak_bytes() == 300
        led.resize(h, 50)
        assert led.live_bytes() == 50
        assert led.peak_bytes() == 300

    def test_free_is_idempotent(self):
        led = MemoryLedger()
        h = led.alloc("a", "x", 10)
        led.free(h)
        led.free(h)
        assert led.live_bytes() == 0
        assert led.clock == 2  # second free records nothing

    def test_unknown_handle_noops(self):
        led = MemoryLedger()
        led.free(999)
        led.resize(999, 10)
        assert led.clock == 0

    def test_per_component_watermarks(self):
        led = MemoryLedger()
        a = led.alloc("csr", "x", 100)
        led.alloc("workspace", "y", 40)
        led.free(a)
        assert led.live_bytes("csr") == 0
        assert led.peak_bytes("csr") == 100
        assert led.live_bytes("workspace") == 40
        assert led.live_bytes() == 40
        assert led.peak_bytes() == 140

    def test_per_phase_watermarks(self):
        led = MemoryLedger()
        h = led.alloc("a", "x", 64, phase="local_move")
        led.alloc("a", "y", 32, phase="refine")
        led.free(h)
        assert led.phase_peak_bytes("local_move") == 64
        assert led.phase_peak_bytes("refine") == 32
        assert led.phase_peak_bytes("aggregate") == 0

    def test_replicas_scale_physical_not_logical(self):
        led = MemoryLedger()
        led.alloc("shm", "scratch", 1000, replicas=4)
        snap = led.to_snapshot()
        assert snap["logical"]["live_bytes"] == 1000
        assert snap["physical"]["live_bytes"] == 4000
        assert snap["physical"]["peak_bytes"] == 4000

    def test_attach_is_physical_only(self):
        led = MemoryLedger()
        led.attach("procpool", "arena_map", 500, replicas=3)
        snap = led.to_snapshot()
        assert snap["logical"]["clock"] == 0
        assert snap["logical"]["live_bytes"] == 0
        assert snap["physical"]["attached_bytes"] == 1500
        assert snap["physical"]["attach_events"] == 1

    def test_clock_counts_events(self):
        led = MemoryLedger()
        h = led.alloc("a", "x", 1)
        led.resize(h, 2)
        led.free(h)
        assert led.clock == 3


class TestAllocationTrace:
    def test_largest_first_with_handle_tiebreak(self):
        led = MemoryLedger()
        led.alloc("csr", "targets", 500, phase="other")
        led.alloc("state", "membership", 900, phase="local_move")
        led.alloc("csr", "weights", 500, phase="other")
        trace = led.allocation_trace()
        assert trace[0].startswith("state/membership phase=local_move 900")
        # 500-byte tie breaks on allocation order.
        assert "csr/targets" in trace[1]
        assert "csr/weights" in trace[2]

    def test_limit(self):
        led = MemoryLedger()
        for i in range(5):
            led.alloc("a", f"b{i}", 10 * (i + 1))
        assert len(led.allocation_trace(limit=2)) == 2


class TestSnapshot:
    def test_schema_and_sections(self):
        led = MemoryLedger()
        led.alloc("csr", "offsets", 8, dtype="int64")
        snap = led.to_snapshot(experiment="t", seed=1)
        assert snap["schema"] == MEMORY_SCHEMA
        assert snap["meta"] == {"experiment": "t", "seed": 1}
        assert set(snap) == {"schema", "meta", "logical", "physical",
                             "events"}
        assert snap["logical"]["components"]["csr"]["allocs"] == 1
        assert snap["events"][0]["dtype"] == "int64"

    def test_double_run_byte_identical(self):
        def run():
            led = MemoryLedger()
            a = led.alloc("csr", "x", 100, phase="other")
            led.alloc("workspace", "y", 50, phase="local_move", replicas=2)
            led.resize(a, 200)
            led.free(a)
            return led.to_json(seed=7)

        assert run() == run()

    def test_validate_replays_events(self):
        led = MemoryLedger()
        a = led.alloc("a", "x", 100)
        led.resize(a, 250)
        led.alloc("b", "y", 50)
        led.free(a)
        stats = validate_memory_doc(led.to_snapshot())
        assert stats["events_replayed"] == 4
        assert stats["live_bytes"] == 50
        assert stats["peak_bytes"] == 300

    def test_validate_rejects_tampered_totals(self):
        led = MemoryLedger()
        led.alloc("a", "x", 100)
        doc = led.to_snapshot()
        doc["logical"]["live_bytes"] = 99
        with pytest.raises(ValueError, match="replay"):
            validate_memory_doc(doc)

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_memory_doc({"schema": "repro.memory/9", "logical": {}})

    def test_max_events_cap_is_never_silent(self):
        led = MemoryLedger(max_events=3)
        for i in range(5):
            led.alloc("a", f"x{i}", 10)
        snap = led.to_snapshot()
        assert len(snap["events"]) == 3
        assert snap["logical"]["events_dropped"] == 2
        assert snap["logical"]["live_bytes"] == 50  # accounting continues
        # Replay verification is skipped for truncated documents.
        assert validate_memory_doc(snap)["events_replayed"] is None


class TestChromeView:
    def _ledger(self):
        led = MemoryLedger()
        a = led.alloc("csr", "x", 100)
        led.alloc("workspace", "y", 50)
        led.resize(a, 300)
        led.free(a)
        return led

    def test_counter_lane_tracks_live_bytes(self):
        led = self._ledger()
        events = led.chrome_events()
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 4
        assert counters[-1]["args"] == {"csr": 0, "workspace": 50}
        # The resize sample reflects the delta, not the raw new size.
        assert counters[2]["args"]["csr"] == 300

    def test_standalone_doc_validates(self):
        doc = self._ledger().to_chrome_trace(experiment="t")
        stats = validate_chrome_trace(doc)
        assert stats["events"] > 0

    def test_empty_ledger_doc_validates(self):
        stats = validate_chrome_trace(MemoryLedger().to_chrome_trace())
        assert stats["events"] >= 1

    def test_merge_into_existing_doc(self):
        led = self._ledger()
        doc = {"traceEvents": [{"ph": "M", "name": "process_name",
                                "pid": 0, "tid": 0, "args": {"name": "x"}}]}
        merged = led.merge_into_chrome(doc)
        assert merged is doc
        assert any(e.get("pid") == memtrack.PID_MEMORY
                   for e in merged["traceEvents"])


class TestNullLedger:
    def test_disabled_and_inert(self):
        led = NullLedger()
        assert not led.enabled
        h = led.alloc("a", "x", 100)
        led.resize(h, 5)
        led.free(h)
        led.attach("a", "y", 10)
        assert led.live_bytes() == 0
        assert led.peak_bytes("a") == 0
        assert led.phase_peak_bytes("p") == 0
        assert led.live_allocations() == []
        assert led.allocation_trace() == []
        assert led.chrome_events() == []

    def test_shared_instance_is_default_active(self):
        assert active_ledger() is NULL_LEDGER


class TestActivate:
    def test_installs_and_restores(self):
        led = MemoryLedger()
        with activate(led):
            assert active_ledger() is led
        assert active_ledger() is NULL_LEDGER

    def test_reentrant(self):
        outer, inner = MemoryLedger(), MemoryLedger()
        with activate(outer):
            with activate(inner):
                assert active_ledger() is inner
            assert active_ledger() is outer

    def test_none_means_disabled(self):
        with activate(None):
            assert active_ledger() is NULL_LEDGER

    def test_phase_scope_nests(self):
        assert memtrack.active_phase() == "other"
        with memtrack.phase_scope("aggregate"):
            assert memtrack.active_phase() == "aggregate"
            with memtrack.phase_scope("refine"):
                assert memtrack.active_phase() == "refine"
            assert memtrack.active_phase() == "aggregate"
        assert memtrack.active_phase() == "other"


class TestRecordCsr:
    def test_charges_all_four_arrays(self):
        g = two_cliques_graph()
        led = MemoryLedger()
        handles = record_csr(led, g)
        assert len(handles) == 4
        expected = (g.offsets.nbytes + g.targets.nbytes
                    + g.weights.nbytes + g.degrees.nbytes)
        assert led.live_bytes("csr") == expected

    def test_disabled_ledger_is_free(self):
        assert record_csr(NULL_LEDGER, two_cliques_graph()) == []


class TestMergeSnapshots:
    def _shard(self, n):
        led = MemoryLedger()
        led.alloc("store", "k", 100 * n, phase="service")
        led.attach("procpool", "m", 10, replicas=n)
        return led.to_snapshot()

    def test_sums_components_and_phases(self):
        merged = merge_memory_snapshots(
            {"s0": self._shard(1), "s1": self._shard(2)}, seed=0)
        assert merged["schema"] == MEMORY_SCHEMA
        assert merged["meta"]["merged_shards"] == 2
        assert merged["logical"]["live_bytes"] == 300
        assert merged["logical"]["components"]["store"]["allocs"] == 2
        assert merged["logical"]["phases"]["service"]["live_bytes"] == 300
        assert merged["physical"]["attached_bytes"] == 30
        assert set(merged["shards"]) == {"s0", "s1"}

    def test_shard_order_does_not_matter(self):
        a = {"s0": self._shard(1), "s1": self._shard(2)}
        b = {"s1": self._shard(2), "s0": self._shard(1)}
        assert (json.dumps(merge_memory_snapshots(a), sort_keys=True)
                == json.dumps(merge_memory_snapshots(b), sort_keys=True))


class TestEndToEnd:
    def test_leiden_run_populates_ledger(self):
        g = random_graph(n=300, avg_degree=6, seed=5)
        led = MemoryLedger()
        record_csr(led, g)
        with Runtime(num_threads=1, seed=42, memory=led) as rt:
            leiden(g, LeidenConfig(seed=42), runtime=rt)
        snap = led.to_snapshot()
        validate_memory_doc(snap)
        comps = snap["logical"]["components"]
        assert "csr" in comps and "workspace" in comps
        # Aggregation builds coarser CSR graphs under the active ledger.
        assert snap["logical"]["phases"].get(
            "aggregate", {}).get("peak_bytes", 0) > 0

    def test_double_run_byte_identical(self):
        def run():
            g = random_graph(n=300, avg_degree=6, seed=5)
            led = MemoryLedger()
            record_csr(led, g)
            with Runtime(num_threads=1, seed=42, memory=led) as rt:
                leiden(g, LeidenConfig(seed=42), runtime=rt)
            return led.to_json(seed=42)

        assert run() == run()

    def test_disabled_runtime_records_nothing(self):
        g = random_graph(n=200, avg_degree=5, seed=3)
        with Runtime(num_threads=1, seed=42) as rt:
            assert rt.memory is NULL_LEDGER
            leiden(g, LeidenConfig(seed=42), runtime=rt)
        assert active_ledger() is NULL_LEDGER
