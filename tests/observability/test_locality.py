"""Tests for the deterministic cache-locality model."""

import numpy as np
import pytest

from repro.graph.builder import build_csr_from_edges
from repro.observability.locality import (
    CACHE_LINE_BYTES,
    LRU_CAPACITY_LINES,
    LocalityReport,
    _lru_misses,
    measure_locality,
)
from tests.conftest import two_cliques_graph


def path_graph(n: int):
    src = list(range(n - 1))
    dst = list(range(1, n))
    return build_csr_from_edges(src, dst, num_vertices=n)


class TestLruMisses:
    def test_empty_stream(self):
        assert _lru_misses(np.empty(0, dtype=np.int64), 4) == 0

    def test_single_line_run_is_one_miss(self):
        assert _lru_misses(np.zeros(100, dtype=np.int64), 4) == 1

    def test_all_distinct_all_miss(self):
        assert _lru_misses(np.arange(10, dtype=np.int64), 16) == 10

    def test_hits_within_capacity(self):
        # second sweep over the same 3 lines hits if capacity >= 3
        stream = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)
        assert _lru_misses(stream, 3) == 3

    def test_cyclic_thrash_below_capacity(self):
        # classic LRU pathology: cycling 3 lines through a 2-line cache
        # misses every access
        stream = np.array([0, 1, 2] * 4, dtype=np.int64)
        assert _lru_misses(stream, 2) == 12

    def test_recency_order_matters(self):
        # after [0, 1, 0], line 1 is least recent; 2 evicts it, then 0
        # still hits but 1 misses again
        stream = np.array([0, 1, 0, 2, 0, 1], dtype=np.int64)
        assert _lru_misses(stream, 2) == 4

    def test_adjacent_runs_collapse(self):
        a = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        b = np.array([0, 1, 2], dtype=np.int64)
        assert _lru_misses(a, 2) == _lru_misses(b, 2)


class TestMeasureLocality:
    def test_small_graph_single_line(self):
        # all ten vertex ids fit in one 16-element line at 4 bytes each
        g = path_graph(10)
        rep = measure_locality(g, element_bytes=4)
        assert rep.num_edges == g.num_edges
        assert rep.gather_lines == 10  # one line per non-empty row
        assert rep.miss_lines == 1     # a single cold miss for the scan
        assert 0 < rep.miss_ratio < rep.gather_ratio

    def test_one_vertex_per_line(self):
        # element_bytes=64 makes every vertex its own cache line
        g = path_graph(6)
        rep = measure_locality(g, element_bytes=64)
        # per row every target is distinct, so gather == edges
        assert rep.gather_lines == g.num_edges
        # with capacity >= n the replay only takes cold misses
        assert rep.miss_lines == 6
        assert rep.gather_ratio == 1.0

    def test_streamed_lines_formula(self):
        g = path_graph(10).compact()
        rep = measure_locality(g)
        expected = (
            -(-g.offsets.nbytes // CACHE_LINE_BYTES)
            + -(-g.targets.nbytes // CACHE_LINE_BYTES)
            + -(-g.weights.nbytes // CACHE_LINE_BYTES)
        )
        assert rep.streamed_lines == expected

    def test_empty_graph(self):
        g = build_csr_from_edges([], [], num_vertices=0)
        rep = measure_locality(g)
        assert rep.num_edges == 0
        assert rep.gather_lines == 0
        assert rep.miss_lines == 0
        assert rep.gather_ratio == 0.0
        assert rep.miss_ratio == 0.0

    def test_scrambled_layout_costs_more_misses(self):
        # a clustered graph under a tiny cache: the original layout
        # keeps each clique's line resident; scattering ids thrashes it
        g = two_cliques_graph()
        rng = np.random.default_rng(0)
        scramble = rng.permutation(g.num_vertices).astype(np.int64)
        g2, _ = g.permute(scramble)
        orig = measure_locality(g, element_bytes=64, lru_capacity_lines=4)
        scram = measure_locality(g2, element_bytes=64, lru_capacity_lines=4)
        assert scram.miss_lines > orig.miss_lines
        # the layout-independent stream is unchanged
        assert scram.streamed_lines == orig.streamed_lines
        assert scram.num_edges == orig.num_edges

    def test_deterministic(self):
        g = two_cliques_graph()
        a = measure_locality(g).to_dict()
        b = measure_locality(g).to_dict()
        assert a == b

    def test_default_capacity(self):
        rep = measure_locality(path_graph(4))
        assert rep.lru_capacity_lines == LRU_CAPACITY_LINES


class TestReportDict:
    def test_keys_and_rounding(self):
        rep = LocalityReport(
            num_vertices=3, num_edges=7, element_bytes=4,
            streamed_lines=5, gather_lines=3, miss_lines=2,
            lru_capacity_lines=8)
        d = rep.to_dict()
        assert d == {
            "num_vertices": 3,
            "num_edges": 7,
            "element_bytes": 4,
            "streamed_lines": 5,
            "gather_lines": 3,
            "gather_ratio": round(3 / 7, 6),
            "miss_lines": 2,
            "miss_ratio": round(2 / 7, 6),
            "lru_capacity_lines": 8,
        }

    def test_ratio_zero_edges(self):
        rep = LocalityReport(1, 0, 4, 1, 0, 0, 8)
        assert rep.gather_ratio == 0.0
        assert rep.miss_ratio == 0.0


class TestSolveLedgerAtomics:
    def test_atomics_by_phase_from_solve(self):
        from repro.core.config import LeidenConfig
        from repro.core.leiden import leiden

        res = leiden(two_cliques_graph(), LeidenConfig(seed=1))
        atomics = res.ledger.atomics_by_phase()
        assert atomics  # the kernels record contention
        assert all(v > 0 for v in atomics.values())
        phases = set(res.ledger.phases())
        assert set(atomics) <= phases


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
