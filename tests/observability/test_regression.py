"""Tests for the baseline store and the ``bench --check`` perf gate."""

import json

import pytest

from repro.observability import regression
from repro.observability.regression import (
    BASELINE_SCHEMA,
    Baseline,
    RunMetrics,
    Thresholds,
    compare_metrics,
    format_checks,
    measure_experiment,
    record_baselines,
    run_check,
    run_trace,
)
from repro.observability.tracer import Tracer

GRAPH = "asia_osm"  # smallest smoke graph in the registry


def _metrics(**overrides):
    base = dict(wall_seconds=1.0, modeled_seconds=0.5, total_work=1000.0,
                modularity=0.9, num_passes=3, num_communities=10)
    base.update(overrides)
    return RunMetrics(**base)


def _baseline(metrics=None, thresholds=None):
    return Baseline(
        name="synthetic", graph=GRAPH, seed=42, num_threads=64,
        metrics=metrics or _metrics(),
        thresholds=thresholds or Thresholds(),
    )


class TestBaselineRoundTrip:
    def test_save_load(self, tmp_path):
        b = _baseline()
        path = tmp_path / "b.json"
        b.save(path)
        loaded = Baseline.load(path)
        assert loaded == b
        assert json.loads(path.read_text())["schema"] == BASELINE_SCHEMA

    def test_rejects_unknown_schema(self, tmp_path):
        doc = _baseline().to_dict()
        doc["schema"] = "repro.baseline/999"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)


class TestCompareMetrics:
    def test_identical_run_passes(self):
        checks = compare_metrics(_baseline(), _metrics())
        assert all(c.ok for c in checks)
        assert {c.metric for c in checks} == {
            "wall_seconds", "modeled_seconds", "total_work", "modularity"
        }

    def test_wall_regression_past_threshold_fails(self):
        """The satellite case: a synthetic 20% slowdown must be caught
        by the default 15% wall threshold."""
        checks = compare_metrics(_baseline(), _metrics(wall_seconds=1.2))
        bad = {c.metric: c for c in checks if not c.ok}
        assert set(bad) == {"wall_seconds"}
        assert bad["wall_seconds"].regression == pytest.approx(0.2)

    def test_faster_run_passes(self):
        checks = compare_metrics(_baseline(), _metrics(wall_seconds=0.5))
        assert all(c.ok for c in checks)

    def test_modularity_gates_on_drop_only(self):
        up = compare_metrics(_baseline(), _metrics(modularity=0.95))
        assert all(c.ok for c in up)
        down = compare_metrics(_baseline(), _metrics(modularity=0.85))
        bad = [c for c in down if not c.ok]
        assert [c.metric for c in bad] == ["modularity"]

    def test_threshold_override(self):
        strict = Thresholds(wall_seconds=0.01)
        checks = compare_metrics(
            _baseline(), _metrics(wall_seconds=1.05), thresholds=strict
        )
        assert not all(c.ok for c in checks)

    def test_format_mentions_failure(self):
        checks = compare_metrics(_baseline(), _metrics(wall_seconds=1.2))
        text = format_checks("synthetic", checks)
        assert text.startswith("FAIL synthetic")
        assert "[REG] wall_seconds" in text
        assert "+20.0%" in text


class TestMeasureExperiment:
    def test_deterministic_modeled_metrics(self):
        a, _ = measure_experiment(GRAPH, seed=42)
        b, _ = measure_experiment(GRAPH, seed=42)
        assert a.modeled_seconds == b.modeled_seconds
        assert a.total_work == b.total_work
        assert a.modularity == b.modularity

    def test_tracer_capture(self):
        tracer = Tracer()
        metrics, result = measure_experiment(GRAPH, seed=42, tracer=tracer)
        assert metrics.num_passes == result.num_passes
        assert tracer.root.children[0].name == "leiden"


class TestRunCheck:
    def test_clean_tree_passes(self, tmp_path, capsys):
        record_baselines(tmp_path, [GRAPH])
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS asia_osm" in out
        assert "1/1 baselines within thresholds" in out

    def test_injected_slowdown_fails_with_readable_diff(
        self, tmp_path, capsys, monkeypatch
    ):
        """A synthetic 20% wall-clock slowdown must exit non-zero and
        print which metric regressed by how much."""
        (recorded,) = record_baselines(tmp_path, [GRAPH],
                                       thresholds=Thresholds())
        real = regression.measure_experiment

        def slowed(*args, **kwargs):
            # Exactly 20% slower than the recorded baseline — independent
            # of this machine's wall-clock noise between the two runs.
            _, result = real(*args, **kwargs)
            base = recorded.metrics
            slow = RunMetrics(**{**base.to_dict(),
                                 "wall_seconds": base.wall_seconds * 1.2})
            return slow, result

        monkeypatch.setattr(regression, "measure_experiment", slowed)
        assert run_check(tmp_path) == 1
        out = capsys.readouterr().out
        assert "FAIL asia_osm" in out
        assert "[REG] wall_seconds" in out
        assert "change=+20.0% (limit +15%)" in out
        assert "0/1 baselines within thresholds" in out

    def test_modeled_work_regression_fails(self, tmp_path, capsys, monkeypatch):
        record_baselines(tmp_path, [GRAPH], thresholds=Thresholds())
        real = regression.measure_experiment

        def heavier(*args, **kwargs):
            metrics, result = real(*args, **kwargs)
            heavy = RunMetrics(**{**metrics.to_dict(),
                                  "total_work": metrics.total_work * 1.5})
            return heavy, result

        monkeypatch.setattr(regression, "measure_experiment", heavier)
        assert run_check(tmp_path) == 1
        assert "[REG] total_work" in capsys.readouterr().out

    def test_missing_baseline_dir(self, tmp_path, capsys):
        assert run_check(tmp_path / "nowhere") == 2
        assert "no baselines" in capsys.readouterr().out


class TestServiceBaseline:
    def test_save_load_roundtrip(self, tmp_path):
        b = regression.ServiceBaseline(
            name="service_tiny", profile="tiny", seed=0,
            expected={"stats": {"clock_units": 1}})
        path = tmp_path / "service_tiny.json"
        b.save(path)
        loaded = regression.ServiceBaseline.load(path)
        assert loaded == b
        assert (json.loads(path.read_text())["schema"]
                == regression.SERVICE_BASELINE_SCHEMA)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.service-baseline/9",
                                    "name": "x", "profile": "tiny",
                                    "seed": 0, "expected": {}}))
        with pytest.raises(ValueError, match="schema"):
            regression.ServiceBaseline.load(path)

    def test_compare_service_docs_diffs(self):
        exp = {"a": 1, "b": {"c": [1, 2]}, "gone": 3}
        act = {"a": 1, "b": {"c": [1, 5]}, "new": 4}
        diffs = regression.compare_service_docs(exp, act)
        paths = {p for p, _, _ in diffs}
        assert paths == {"b.c[1]", "gone", "new"}
        assert regression.compare_service_docs(exp, dict(exp)) == []

    def test_record_then_check_passes(self, tmp_path, capsys):
        regression.record_service_baselines(tmp_path, ["tiny"], seed=0)
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS service_tiny (exact match" in out
        assert "1/1 baselines within thresholds" in out

    def test_drifted_stats_fail(self, tmp_path, capsys):
        (recorded,) = regression.record_service_baselines(
            tmp_path, ["tiny"], seed=0)
        doc = recorded.to_dict()
        doc["expected"]["stats"]["clock_units"] += 1
        (tmp_path / "service_tiny.json").write_text(json.dumps(doc))
        assert run_check(tmp_path) == 1
        out = capsys.readouterr().out
        assert "FAIL service_tiny" in out
        assert "[REG] stats.clock_units" in out

    def test_mixed_dir_dispatches_by_schema(self, tmp_path, capsys):
        record_baselines(tmp_path, [GRAPH])
        regression.record_service_baselines(tmp_path, ["tiny"], seed=0)
        assert run_check(tmp_path) == 0
        assert "2/2 baselines within thresholds" in capsys.readouterr().out


class TestReqtraceBaseline:
    def test_save_load_roundtrip(self, tmp_path):
        b = regression.ReqtraceBaseline(
            name="reqtrace_tiny", profile="tiny", seed=0,
            expected={"kept_match": True, "widths": {}})
        path = tmp_path / "reqtrace_tiny.json"
        b.save(path)
        loaded = regression.ReqtraceBaseline.load(path)
        assert loaded == b
        assert (json.loads(path.read_text())["schema"]
                == regression.REQTRACE_BASELINE_SCHEMA)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.reqtrace-baseline/9",
                                    "name": "x", "profile": "tiny",
                                    "seed": 0, "expected": {}}))
        with pytest.raises(ValueError, match="schema"):
            regression.ReqtraceBaseline.load(path)

    def test_record_then_check_passes(self, tmp_path, capsys):
        regression.record_reqtrace_baselines(tmp_path, ["tiny"], seed=0)
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS reqtrace_tiny (exact match" in out

    def test_measure_pins_mode_agreement_and_width_invariance(self):
        doc = regression.measure_reqtrace("tiny", seed=0)
        assert doc["kept_match"] is True
        assert doc["det_keep_invariant"] is True
        assert set(doc["widths"]) == {"shards_1", "shards_4"}

    def test_expected_names_include_reqtrace(self):
        assert "reqtrace_quick.json" in regression.expected_baseline_names()


class TestMemoryBaseline:
    def test_roundtrip_and_schema(self, tmp_path):
        baselines = regression.record_memory_baselines(tmp_path, seed=42)
        assert [b.name for b in baselines] == ["memory_quick"]
        path = tmp_path / "memory_quick.json"
        loaded = regression.MemoryBaseline.load(path)
        assert loaded == baselines[0]
        assert (json.loads(path.read_text())["schema"]
                == regression.MEMORY_BASELINE_SCHEMA)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.memory-baseline/9",
                                    "name": "x", "graph": GRAPH,
                                    "seed": 42, "expected": {}}))
        with pytest.raises(ValueError, match="schema"):
            regression.MemoryBaseline.load(path)

    def test_record_then_check_passes(self, tmp_path, capsys):
        regression.record_memory_baselines(tmp_path, seed=42)
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS memory_quick (exact match" in out

    def test_tampered_expectation_fails_with_diff(self, tmp_path, capsys):
        (baseline,) = regression.record_memory_baselines(tmp_path, seed=42)
        doc = baseline.to_dict()
        doc["expected"]["logical"]["peak_bytes"] += 1
        doc["expected"]["events"][0]["nbytes"] += 1
        path = tmp_path / "memory_quick.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        assert run_check(tmp_path) == 1
        out = capsys.readouterr().out
        assert "FAIL memory_quick" in out
        assert "logical.peak_bytes" in out

    def test_measure_is_deterministic_and_validated(self):
        a = regression.measure_memory(GRAPH, seed=42)
        b = regression.measure_memory(GRAPH, seed=42)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["logical"]["peak_bytes"] > 0
        assert a["logical"]["events_dropped"] == 0

    def test_expected_names_include_memory(self):
        assert "memory_quick.json" in regression.expected_baseline_names()


class TestRunTrace:
    def test_bundle_schema(self):
        bundle = run_trace([GRAPH], seed=42)
        assert bundle["schema"] == regression.TRACE_BUNDLE_SCHEMA
        doc = bundle["experiments"][GRAPH]
        assert doc["schema"] == "repro.trace/2"
        assert doc["meta"]["experiment"] == GRAPH
        assert doc["meta"]["metrics"]["num_passes"] >= 1
        assert doc["spans"][0]["name"] == "leiden"
        assert doc["counters"]["parallel_regions"] > 0


class TestCommittedBaselines:
    """The real gate: the files under benchmarks/baselines must pass."""

    def test_committed_baselines_pass_on_clean_tree(self):
        directory = regression.default_baseline_dir()
        assert directory.is_dir(), directory
        assert run_check(directory, print_fn=lambda *_: None) == 0


class TestMigrateTrace:
    def _traced_doc(self):
        tracer = Tracer()
        measure_experiment(GRAPH, seed=42, tracer=tracer)
        return tracer.to_dict(experiment=GRAPH, seed=42)

    def test_v2_to_v1_strips_series(self):
        doc = self._traced_doc()

        def any_series(span):
            return "series" in span or any(
                any_series(c) for c in span.get("children", ()))

        assert any(any_series(s) for s in doc["spans"])
        v1 = regression.migrate_trace(doc, target="repro.trace/1")
        assert v1["schema"] == "repro.trace/1"
        assert not any(any_series(s) for s in v1["spans"])
        # Counters / derived metrics survive the downgrade.
        assert v1["counters"] == doc["counters"]
        assert v1["derived"] == doc["derived"]

    def test_same_schema_passthrough_is_a_copy(self):
        doc = self._traced_doc()
        same = regression.migrate_trace(doc, target=doc["schema"])
        assert same == doc and same is not doc

    def test_unknown_migration_raises(self):
        doc = self._traced_doc()
        with pytest.raises(ValueError):
            regression.migrate_trace(doc, target="repro.trace/99")
        with pytest.raises(ValueError):
            regression.migrate_trace({"schema": "bogus/1"},
                                     target="repro.trace/1")


class TestTraceDiffHelpers:
    @staticmethod
    def _trace(**config):
        tracer = Tracer()
        measure_experiment(GRAPH, seed=42, tracer=tracer,
                           config=config or None)
        return tracer.to_dict(experiment=GRAPH, seed=42)

    def test_identical_docs_have_no_deterministic_diffs(self):
        a = self._trace()
        b = self._trace()
        rows = regression.diff_trace_docs(a, b)
        det = [r for r in rows if r["kind"] in ("counter", "derived")
               and r["a"] != r["b"]]
        assert det == []
        _, n = regression.format_trace_diff(rows, label_a="a", label_b="b")
        assert n == 0

    def test_counter_divergence_is_flagged(self):
        a = self._trace()
        b = self._trace(max_passes=1)
        rows = regression.diff_trace_docs(a, b)
        assert any(r["kind"] == "counter" and r["a"] != r["b"]
                   for r in rows)
        text, n = regression.format_trace_diff(rows, label_a="a",
                                               label_b="b")
        assert n > 0 and "[DIFF]" in text


class TestRunProfile:
    def test_bundle_schema_and_contents(self):
        bundle = regression.run_profile([GRAPH], seed=42, num_threads=4)
        assert bundle["schema"] == regression.PROFILE_BUNDLE_SCHEMA
        entry = bundle["experiments"][GRAPH]
        from repro.observability.profiler import validate_chrome_trace

        stats = validate_chrome_trace(entry["chrome"])
        assert stats["events"] > 0
        assert "per-phase attribution" in entry["report"]
        assert entry["metrics"]["modularity"] > 0.0

    def test_bundle_deterministic(self):
        """Chrome trace and report are byte-identical across runs
        (metrics carry wall-clock seconds, so they are excluded)."""
        a = regression.run_profile([GRAPH], seed=42, num_threads=4)
        b = regression.run_profile([GRAPH], seed=42, num_threads=4)
        ea, eb = a["experiments"][GRAPH], b["experiments"][GRAPH]
        assert json.dumps(ea["chrome"], sort_keys=True) == json.dumps(
            eb["chrome"], sort_keys=True)
        assert ea["report"] == eb["report"]


class TestMissingBaselines:
    """`bench --check` must hard-error when expected files are absent —
    a gate that silently skips missing baselines checks nothing."""

    def test_expected_names_cover_all_recorder_families(self):
        names = regression.expected_baseline_names()
        assert names == sorted(names)
        for g in regression.DEFAULT_BASELINE_GRAPHS:
            assert f"{g}.json" in names
        assert "service_quick.json" in names
        assert any(n.startswith("metrics_") for n in names)

    def test_partial_dir_fails_before_any_rerun(self, tmp_path, capsys):
        # A lone perf baseline: complete enough to re-run, but the gate
        # must refuse before measuring anything.
        record_baselines(tmp_path, [GRAPH])
        assert run_check(tmp_path, require_complete=True) == 2
        out = capsys.readouterr().out
        assert "MISSING baseline" in out
        assert "service_quick.json" in out
        assert "--update-baselines" in out
        assert "[OK]" not in out  # no baseline was re-measured

    def test_partial_dir_passes_without_require_complete(self, tmp_path):
        record_baselines(tmp_path, [GRAPH])
        assert run_check(tmp_path) == 0

    def test_cli_check_is_strict(self, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main

        record_baselines(tmp_path, [GRAPH])
        assert bench_main(["--check", "--baselines", str(tmp_path)]) == 2
        assert "MISSING baseline" in capsys.readouterr().out

    def test_cli_check_empty_dir_is_error(self, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main

        empty = tmp_path / "none"
        empty.mkdir()
        assert bench_main(["--check", "--baselines", str(empty)]) == 2
        assert "no baselines" in capsys.readouterr().out

    def test_committed_tree_is_complete(self):
        # The repo's own baseline dir must satisfy the strict gate's
        # completeness precondition (the re-run itself is the slow CI
        # job; here we only assert no file is missing).
        directory = regression.default_baseline_dir()
        found = {p.name for p in directory.glob("*.json")}
        missing = [n for n in regression.expected_baseline_names()
                   if n not in found]
        assert missing == []
