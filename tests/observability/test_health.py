"""Tests for the rolling-window SLO burn-rate evaluator."""

import pytest

from repro.errors import MetricsError
from repro.observability.health import (
    HEALTH_SCHEMA,
    HealthEvaluator,
    SLObjective,
    default_service_slos,
)


def latency_slo(**kw) -> SLObjective:
    base = dict(name="lat", signal="lat", kind="latency", target=2.0,
                budget=0.1, long_window=100, short_window=20,
                warn_burn=1.0, page_burn=5.0)
    base.update(kw)
    return SLObjective(**base)


class TestSLObjective:
    def test_validation(self):
        with pytest.raises(MetricsError):
            latency_slo(kind="weird")
        with pytest.raises(MetricsError):
            latency_slo(budget=0.0)
        with pytest.raises(MetricsError):
            latency_slo(budget=1.5)
        with pytest.raises(MetricsError):
            latency_slo(long_window=0)
        with pytest.raises(MetricsError):
            latency_slo(short_window=200)  # longer than long_window
        with pytest.raises(MetricsError):
            latency_slo(warn_burn=3.0, page_burn=1.0)

    def test_is_bad(self):
        slo = latency_slo(target=2.0)
        assert not slo.is_bad(2.0)
        assert slo.is_bad(2.5)
        ratio = latency_slo(kind="ratio", target=0.0)
        assert ratio.is_bad(1.0)
        assert not ratio.is_bad(0.0)

    def test_json_roundtrip(self):
        slo = latency_slo()
        assert SLObjective(**slo.to_json_dict()) == slo

    def test_duplicate_names_rejected(self):
        with pytest.raises(MetricsError):
            HealthEvaluator([latency_slo(), latency_slo()])

    def test_default_slos_valid(self):
        slos = default_service_slos()
        assert len(slos) == 4
        assert {o.name for o in slos} == {
            "query_latency_p99", "error_ratio", "refresh_staleness",
            "mem_peak_to_budget"}


class TestWindows:
    def test_empty_window_is_ok(self):
        ev = HealthEvaluator([latency_slo()])
        doc = ev.evaluate(1000)
        (obj,) = doc["objectives"]
        assert obj["state"] == "OK"
        assert obj["long"]["samples"] == 0
        assert obj["long"]["burn_rate"] == 0.0

    def test_window_longer_than_run(self):
        # Every sample recorded so far is inside the long window.
        ev = HealthEvaluator([latency_slo(long_window=10_000,
                                          short_window=10_000)])
        for clock in range(5):
            ev.record_value("lat", clock, 1.0)
        (obj,) = ev.evaluate(5)["objectives"]
        assert obj["long"]["samples"] == 5
        assert obj["state"] == "OK"

    def test_samples_age_out(self):
        ev = HealthEvaluator([latency_slo()])
        for clock in range(10):
            ev.record_value("lat", clock, 100.0)  # all bad
        # Far in the future both windows are empty again.
        assert ev.state(10_000) == "OK"

    def test_clock_jump_ages_samples(self):
        # A full-recompute fallback advances the logical clock in one
        # large step; old samples must age out, not skew the rate.
        ev = HealthEvaluator([latency_slo()])
        for clock in range(10):
            ev.record_value("lat", clock, 100.0)
        assert ev.state(10) != "OK"
        # One good sample after a jump past the horizon prunes history.
        ev.record_value("lat", 5_000, 1.0)
        (obj,) = ev.evaluate(5_000)["objectives"]
        assert obj["long"]["samples"] == 1
        assert obj["state"] == "OK"

    def test_unwatched_signal_dropped(self):
        ev = HealthEvaluator([latency_slo()])
        ev.record_value("other", 1, 99.0)
        assert sum(len(b) for b in ev._samples.values()) == 0

    def test_window_is_half_open(self):
        # (clock - window, clock]: a sample exactly at the floor is out.
        ev = HealthEvaluator([latency_slo(long_window=10, short_window=10)])
        ev.record_value("lat", 0, 100.0)
        ev.record_value("lat", 5, 100.0)
        (obj,) = ev.evaluate(10)["objectives"]
        assert obj["long"]["samples"] == 1  # clock 0 aged out


class TestBurnRates:
    def test_burn_rate_math(self):
        # 3 bad of 10 with budget 0.1 -> burn 3.0.
        ev = HealthEvaluator([latency_slo()])
        for i in range(10):
            ev.record_value("lat", 10 + i, 100.0 if i < 3 else 1.0)
        (obj,) = ev.evaluate(20)["objectives"]
        assert obj["long"]["bad"] == 3
        assert obj["long"]["burn_rate"] == pytest.approx(3.0)

    def test_ok_warn_page_transitions(self):
        # Three traffic phases: healthy, mildly bad, fully bad.
        ev = HealthEvaluator([latency_slo()])
        clock = 0
        for _ in range(50):  # all good
            ev.record_value("lat", clock, 1.0)
            clock += 1
        assert ev.state(clock) == "OK"
        for i in range(40):  # 25% bad: budget 0.1 -> burn > 1 both windows
            ev.record_value("lat", clock, 100.0 if i % 4 == 0 else 1.0)
            clock += 1
        assert ev.state(clock) == "WARN"
        for _ in range(60):  # all bad: burn >= 5 in both windows
            ev.record_value("lat", clock, 100.0)
            clock += 1
        assert ev.state(clock) == "PAGE"

    def test_page_requires_both_windows(self):
        # Long window still burning, short window recovered -> no PAGE.
        ev = HealthEvaluator([latency_slo()])
        clock = 0
        for _ in range(60):
            ev.record_value("lat", clock, 100.0)
            clock += 1
        for _ in range(25):  # short window (20) now fully good
            ev.record_value("lat", clock, 1.0)
            clock += 1
        (obj,) = ev.evaluate(clock)["objectives"]
        assert obj["long"]["burn_rate"] >= 5.0
        assert obj["short"]["burn_rate"] == 0.0
        assert obj["state"] == "OK"

    def test_ratio_objective(self):
        slo = SLObjective(name="err", signal="errors", kind="ratio",
                          budget=0.5, long_window=100, short_window=100,
                          warn_burn=1.0, page_burn=2.0)
        ev = HealthEvaluator([slo])
        for i in range(10):
            ev.record_event("errors", i, bad=(i % 2 == 0))
        (obj,) = ev.evaluate(9)["objectives"]
        assert obj["long"]["bad"] == 5
        assert obj["state"] == "WARN"  # burn = 0.5/0.5 = 1.0


class TestEvaluateDocument:
    def test_schema_and_worst_state(self):
        good = latency_slo(name="a", signal="a")
        bad = latency_slo(name="b", signal="b")
        ev = HealthEvaluator([good, bad])
        for clock in range(30):
            ev.record_value("a", clock, 1.0)
            ev.record_value("b", clock, 100.0)
        doc = ev.evaluate(30)
        assert doc["schema"] == HEALTH_SCHEMA
        assert doc["clock"] == 30
        assert [o["name"] for o in doc["objectives"]] == ["a", "b"]
        assert doc["state"] == "PAGE"  # worst of OK and PAGE

    def test_no_objectives_trivially_ok(self):
        assert HealthEvaluator().evaluate(0)["state"] == "OK"

    def test_deterministic_across_runs(self):
        def run():
            ev = HealthEvaluator(default_service_slos())
            for clock in range(200):
                ev.record_value("query_latency_units", clock,
                                float(clock % 90))
                ev.record_event("request_errors", clock, clock % 37 == 0)
                ev.record_event("stale_serves", clock, clock % 11 == 0)
            return ev.evaluate(200)
        assert run() == run()
