"""Tests for the exact-match metrics-snapshot baselines in the bench gate."""

import json

import pytest

from repro.observability.regression import (
    METRICS_BASELINE_SCHEMA,
    MetricsBaseline,
    measure_metrics,
    measure_service_metrics,
    record_metrics_baselines,
    run_check,
)


class TestMetricsBaselineRoundTrip:
    def test_save_load(self, tmp_path):
        b = MetricsBaseline(name="metrics_x", kind="leiden", target="x",
                            seed=3, expected={"families": {}})
        path = tmp_path / "metrics_x.json"
        b.save(path)
        loaded = MetricsBaseline.load(path)
        assert loaded == b
        assert json.loads(path.read_text())["schema"] == \
            METRICS_BASELINE_SCHEMA

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/9", "name": "x"}))
        with pytest.raises(ValueError):
            MetricsBaseline.load(path)


class TestMeasureDeterminism:
    def test_leiden_snapshot_repeatable(self):
        a = measure_metrics("asia_osm", seed=42)
        b = measure_metrics("asia_osm", seed=42)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_service_snapshot_repeatable(self):
        a = measure_service_metrics("tiny", seed=0)
        b = measure_service_metrics("tiny", seed=0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["health"]["schema"] == "repro.health/1"


class TestGate:
    def test_record_then_check_passes(self, tmp_path, capsys):
        record_metrics_baselines(tmp_path, graphs=("asia_osm",),
                                 profiles=("tiny",))
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS metrics_asia_osm" in out
        assert "PASS metrics_service_tiny" in out

    def test_drifted_snapshot_fails(self, tmp_path, capsys):
        (baseline,) = record_metrics_baselines(tmp_path, graphs=("asia_osm",),
                                               profiles=())
        doc = baseline.to_dict()
        doc["expected"]["families"]["leiden_passes_total"]["series"][0][
            "value"] += 1
        (tmp_path / "metrics_asia_osm.json").write_text(json.dumps(doc))
        assert run_check(tmp_path) == 1
        out = capsys.readouterr().out
        assert "FAIL metrics_asia_osm" in out
        assert "[REG]" in out
        assert "leiden_passes_total" in out

    def test_mixed_dir_dispatches_by_schema(self, tmp_path, capsys):
        from repro.observability.regression import record_baselines

        record_baselines(tmp_path, graphs=("asia_osm",), seed=42)
        record_metrics_baselines(tmp_path, graphs=("asia_osm",), profiles=())
        assert run_check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "PASS asia_osm" in out
        assert "PASS metrics_asia_osm" in out
