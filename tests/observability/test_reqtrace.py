"""Request tracing: trace ids, tail sampling, flight recorder, export."""

import json

import pytest

from repro.observability.profiler import validate_chrome_trace
from repro.observability.reqtrace import (
    DETERMINISTIC_KEEP_REASONS,
    NULL_REQTRACE,
    FlightRecorder,
    NullRequestTracer,
    RequestTracer,
    TailSamplingConfig,
    merge_chrome_trace,
    mint_trace_id,
    select_kept,
    validate_reqtrace,
)


class TestMintTraceId:
    def test_deterministic_and_16_hex(self):
        a = mint_trace_id(0, 0)
        assert a == mint_trace_id(0, 0)
        assert len(a) == 16
        int(a, 16)  # raises if not hex

    def test_seed_and_sequence_both_matter(self):
        ids = {mint_trace_id(s, q) for s in (0, 1, 7) for q in (0, 1, 2)}
        assert len(ids) == 9


class TestTailSamplingConfig:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            TailSamplingConfig(window=0)

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError, match=">= 0"):
            TailSamplingConfig(top_k=-1)
        with pytest.raises(ValueError, match=">= 0"):
            TailSamplingConfig(reservoir=-1)


def finished_trace(tracer, seq_kind="query", *, status="done",
                   fleet_state="", failover=False, latency=1.0):
    ctx = tracer.begin(seq_kind, f"k{tracer._seq}", 0.0)
    return tracer.finish(ctx, status=status, clock=latency,
                         fleet_state=fleet_state, failover=failover,
                         latency_units=latency)


class TestSelectKept:
    def make_traces(self, n=8, **kw):
        tracer = RequestTracer(seed=3)
        return [finished_trace(tracer, **kw) for _ in range(n)]

    def test_errors_degraded_failovers_always_kept(self):
        tracer = RequestTracer(seed=3)
        err = finished_trace(tracer, status="failed")
        deg = finished_trace(tracer, fleet_state="degraded")
        fov = finished_trace(tracer, failover=True)
        cfg = TailSamplingConfig(window=4, top_k=0, reservoir=0)
        reasons = select_kept([err, deg, fov], cfg, seed=3)
        assert "error" in reasons[err.trace_id]
        assert "degraded" in reasons[deg.trace_id]
        assert "failover" in reasons[fov.trace_id]

    def test_top_k_slowest_with_seq_tiebreak(self):
        tracer = RequestTracer(seed=0)
        traces = [finished_trace(tracer, latency=lat)
                  for lat in (5.0, 9.0, 9.0, 1.0)]
        cfg = TailSamplingConfig(window=8, top_k=2, reservoir=0)
        reasons = select_kept(traces, cfg, seed=0)
        slowest = {tid for tid, rs in reasons.items() if "slowest" in rs}
        # Both 9.0s win; the tie among them resolves toward earlier seq
        # but top_k=2 admits both, excluding 5.0 and 1.0.
        assert slowest == {traces[1].trace_id, traces[2].trace_id}

    def test_order_insensitive(self):
        traces = self.make_traces(12)
        cfg = TailSamplingConfig(window=4, top_k=1, reservoir=2)
        fwd = select_kept(traces, cfg, seed=3)
        rev = select_kept(list(reversed(traces)), cfg, seed=3)
        assert fwd == rev

    def test_reasons_sorted(self):
        tracer = RequestTracer(seed=1)
        t = finished_trace(tracer, status="failed", fleet_state="degraded",
                           failover=True)
        cfg = TailSamplingConfig(window=2, top_k=1, reservoir=2)
        reasons = select_kept([t], cfg, seed=1)
        assert reasons[t.trace_id] == sorted(reasons[t.trace_id])

    def test_deterministic_reasons_exclude_slowest(self):
        assert "slowest" not in DETERMINISTIC_KEEP_REASONS
        assert DETERMINISTIC_KEEP_REASONS == {
            "error", "degraded", "failover", "reservoir"}


class TestModes:
    def drive(self, mode, n=40):
        tracer = RequestTracer(seed=7, mode=mode,
                               sampling=TailSamplingConfig(
                                   window=8, top_k=2, reservoir=2))
        for i in range(n):
            finished_trace(tracer, status="failed" if i % 13 == 0 else "done",
                           latency=float(i % 5))
        return tracer

    def test_full_keeps_everything_but_annotates(self):
        tracer = self.drive("full")
        kept = tracer.kept_traces()
        assert len(kept) == 40
        assert any(t.keep_reasons for t in kept)
        assert any(not t.keep_reasons for t in kept)

    def test_sampled_keeps_exactly_the_annotated_set(self):
        full = self.drive("full")
        sampled = self.drive("sampled")
        want = {t.trace_id for t in full.kept_traces() if t.keep_reasons}
        got = {t.trace_id for t in sampled.kept_traces()}
        assert got == want
        doc = sampled.to_json_dict()
        assert doc["totals"]["dropped"] == 40 - len(want)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RequestTracer(mode="half")


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        tracer = RequestTracer(seed=0)
        traces = [finished_trace(tracer) for _ in range(5)]
        for t in traces:
            rec.record(t)
        dump = rec.dump(reason="WARN->PAGE", clock=9.0)
        assert [t["seq"] for t in dump["traces"]] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_dump_only_on_transition_into_page(self):
        tracer = RequestTracer(seed=0, flight_capacity=4)
        finished_trace(tracer)
        tracer.observe_health("OK", 1.0)
        tracer.observe_health("WARN", 2.0)
        assert tracer.flight.dumps == []
        tracer.observe_health("PAGE", 3.0)
        tracer.observe_health("PAGE", 4.0)  # still paging: no second dump
        assert len(tracer.flight.dumps) == 1
        assert tracer.flight.dumps[0]["reason"] == "WARN->PAGE"
        tracer.observe_health("OK", 5.0)
        tracer.observe_health("PAGE", 6.0)  # re-entry dumps again
        assert len(tracer.flight.dumps) == 2
        assert tracer.flight.dumps[1]["reason"] == "OK->PAGE"

    def test_sampling_never_thins_the_ring(self):
        tracer = RequestTracer(seed=0, mode="sampled",
                               sampling=TailSamplingConfig(
                                   window=8, top_k=0, reservoir=0))
        for _ in range(6):
            finished_trace(tracer)
        assert tracer.kept_traces() == []  # nothing survives retention
        tracer.observe_health("PAGE", 7.0)
        assert len(tracer.flight.dumps[0]["traces"]) == 6


class TestDocument:
    def make_doc(self, **meta):
        tracer = RequestTracer(seed=5)
        ctx = tracer.begin("detect", "key-a", 0.0)
        ctx.span("queue_wait", "server", 0.0, 2.0)
        ctx.span("serve.detect", "server", 2.0, 6.0, cache_hit=False)
        tracer.finish(ctx, status="done", clock=6.0, latency_units=6.0)
        return tracer, tracer.to_json_dict(**meta)

    def test_validates_and_counts(self):
        _, doc = self.make_doc(experiment="unit")
        assert validate_reqtrace(doc) == {"traces": 1, "spans": 2,
                                          "dumps": 0}
        assert doc["meta"]["experiment"] == "unit"

    def test_byte_deterministic(self):
        _, a = self.make_doc()
        _, b = self.make_doc()
        dump = lambda d: json.dumps(d, sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)

    def test_rejects_wrong_schema(self):
        _, doc = self.make_doc()
        doc["schema"] = "repro.reqtrace/0"
        with pytest.raises(ValueError, match="schema"):
            validate_reqtrace(doc)

    def test_rejects_underivable_trace_id(self):
        _, doc = self.make_doc()
        doc["traces"][0]["trace_id"] = "f" * 16
        with pytest.raises(ValueError, match="does not match"):
            validate_reqtrace(doc)

    def test_rejects_unsorted_seq(self):
        tracer = RequestTracer(seed=5)
        finished_trace(tracer)
        finished_trace(tracer)
        doc = tracer.to_json_dict()
        doc["traces"].reverse()
        with pytest.raises(ValueError, match="sorted"):
            validate_reqtrace(doc)

    def test_rejects_malformed_link(self):
        _, doc = self.make_doc()
        doc["traces"][0]["spans"][0]["link"] = "short"
        with pytest.raises(ValueError, match="link"):
            validate_reqtrace(doc)

    def test_rejects_backwards_span(self):
        _, doc = self.make_doc()
        doc["traces"][0]["spans"][0]["end_units"] = -1.0
        with pytest.raises(ValueError, match="ends before"):
            validate_reqtrace(doc)


class TestChromeView:
    def multi_lane_tracer(self):
        tracer = RequestTracer(seed=2)
        ctx = tracer.begin("query", "key-a", 0.0)
        ctx.span("admission", "router", 0.0, 0.0, kind="query")
        ctx.span("queue_wait", "shard-0", 0.0, 3.0)
        ctx.span("serve.query", "shard-0", 3.0, 5.0)
        ctx.span("reply", "router", 5.0, 5.0, status="done")
        tracer.finish(ctx, status="done", clock=5.0, latency_units=5.0)
        return tracer

    def test_lanes_flows_and_validation(self):
        doc = self.multi_lane_tracer().to_chrome_trace()
        summary = validate_chrome_trace(doc)
        assert summary["lanes"] == 2
        assert summary["flows"] == 1
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"router", "shard-0"}

    def test_wait_spans_collapse_to_markers(self):
        doc = self.multi_lane_tracer().to_chrome_trace()
        waits = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "queue_wait"]
        assert len(waits) == 1
        assert waits[0]["dur"] == 0.0
        assert waits[0]["ts"] == 3.0  # the dequeue moment, not the submit
        assert waits[0]["args"]["wait_units"] == 3.0

    def test_merge_grafts_onto_profile_doc(self):
        tracer = self.multi_lane_tracer()
        base = {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"schema": "repro.profile/1",
                              "num_threads": 0}}
        merged = merge_chrome_trace(base, tracer)
        assert merged["otherData"]["reqtrace"]["kept"] == 1
        assert base["traceEvents"] == []  # input untouched
        validate_chrome_trace(merged)


class TestNullTracer:
    def test_disabled_api_surface(self):
        assert NULL_REQTRACE.enabled is False
        assert NULL_REQTRACE.begin("query", "k", 0.0) is None
        assert NULL_REQTRACE.kept_traces() == []
        assert NullRequestTracer().to_json_dict()["traces"] == []
