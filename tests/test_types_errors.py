"""Tests for the shared dtype helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.types import (
    ACCUM_DTYPE,
    OFFSET_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
    as_accum_array,
    as_vertex_array,
    as_weight_array,
)


class TestDtypes:
    def test_paper_configuration(self):
        """Section 5.1.2: 32-bit ids, 32-bit weights, 64-bit accumulation."""
        assert VERTEX_DTYPE == np.int32
        assert WEIGHT_DTYPE == np.float32
        assert ACCUM_DTYPE == np.float64
        assert OFFSET_DTYPE == np.int64

    def test_as_vertex_array(self):
        arr = as_vertex_array([1, 2, 3])
        assert arr.dtype == VERTEX_DTYPE
        assert arr.flags["C_CONTIGUOUS"]

    def test_as_vertex_array_copy(self):
        src = np.array([1, 2], dtype=VERTEX_DTYPE)
        assert as_vertex_array(src, copy=True) is not src

    def test_as_weight_array(self):
        arr = as_weight_array([1.5])
        assert arr.dtype == WEIGHT_DTYPE

    def test_as_accum_array(self):
        arr = as_accum_array(np.array([1], dtype=np.int32))
        assert arr.dtype == ACCUM_DTYPE


class TestErrors:
    def test_hierarchy(self):
        for exc in (errors.GraphFormatError, errors.GraphStructureError,
                    errors.ConfigError, errors.ConvergenceError,
                    errors.SimulatedOutOfMemory):
            assert issubclass(exc, errors.ReproError)
        assert issubclass(errors.ReproError, Exception)

    def test_oom_carries_sizes(self):
        exc = errors.SimulatedOutOfMemory(200, 100, what="test-graph")
        assert exc.required_bytes == 200
        assert exc.capacity_bytes == 100
        assert "test-graph" in str(exc)
        assert "200" in str(exc)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulatedOutOfMemory(2, 1)
