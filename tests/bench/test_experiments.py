"""Smoke tests for the experiment drivers on small graph subsets.

Full-registry runs live in ``benchmarks/``; here each driver is run on
one or two small graphs to validate structure and reporting.
"""


import pytest

from repro.bench.experiments import (
    ext_reorder_locality,
    ext_service_load,
    fig1_fig2_refinement,
    fig3_fig4_supervertex,
    fig6_comparison,
    fig7_splits,
    fig8_rate,
    fig9_scaling,
    sec55_indirect,
    table1_speedup,
    table2_datasets,
)

SMALL = ["asia_osm", "com-Orkut"]


class TestTable2:
    def test_rows(self):
        rows = table2_datasets.run(SMALL)
        assert [r.name for r in rows] == SMALL
        assert all(r.num_communities > 0 for r in rows)
        report = table2_datasets.report(rows)
        assert "asia_osm" in report and "Davg" in report

    def test_fingerprint_column(self):
        from repro.datasets.registry import load_graph

        rows = table2_datasets.run(["asia_osm"])
        assert rows[0].fingerprint == load_graph("asia_osm").fingerprint()
        assert rows[0].fingerprint[:12] in table2_datasets.report(rows)


class TestExtServiceLoad:
    def test_micro_batching_reduces_solves(self):
        result = ext_service_load.run("tiny", seed=0)
        co = result.outcomes["coalesced"]
        un = result.outcomes["uncoalesced"]
        solves_co = ext_service_load._refresh_solves(co.stats)
        solves_un = ext_service_load._refresh_solves(un.stats)
        assert solves_co < solves_un
        assert all(co.membership_matches_scratch.values())
        assert all(un.membership_matches_scratch.values())
        report = ext_service_load.report(result)
        assert "micro-batching saves" in report
        assert "coalesced" in report


class TestExtReorderLocality:
    def test_relabeling_recovers_scrambled_locality(self):
        doc = ext_reorder_locality.measure_reorder_locality("asia_osm")
        assert doc["q_invariant"] is True
        loc = doc["locality"]
        assert set(loc) == set(ext_reorder_locality.LAYOUTS)
        # scrambling destroys locality; the community layout recovers it
        assert loc["scrambled"]["miss_ratio"] > 2 * loc["original"]["miss_ratio"]
        assert loc["relabeled"]["miss_ratio"] < 0.5 * loc["scrambled"]["miss_ratio"]
        # edge counts are layout-invariant
        edges = {loc[k]["num_edges"] for k in loc}
        assert len(edges) == 1

    def test_measurement_deterministic(self):
        import json

        a = ext_reorder_locality.measure_reorder_locality("asia_osm")
        b = ext_reorder_locality.measure_reorder_locality("asia_osm")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_run_and_report(self):
        result = ext_reorder_locality.run(["asia_osm"], engines=("batch",))
        assert list(result.measurements) == ["asia_osm"]
        assert result.measurements["asia_osm"]["q_invariant"] is True
        layouts = {r["layout"] for r in result.rows}
        assert layouts == set(ext_reorder_locality.LAYOUTS)
        assert all(r["wall_seconds"] >= 0 for r in result.rows)
        report = ext_reorder_locality.report(result)
        assert "miss/edge" in report
        assert "scrambled" in report and "relabeled" in report


class TestFig6AndTable1:
    def test_fig6_structure(self):
        result = fig6_comparison.run(SMALL, ["gve", "networkit"])
        assert result.graphs == SMALL
        speedups = result.speedup_vs("networkit")
        assert set(speedups) == set(SMALL)
        assert all(v > 0 for v in speedups.values())
        report = fig6_comparison.report(result)
        assert "Figure 6(a)" in report and "Figure 6(d)" in report

    def test_oom_shown_in_report(self):
        result = fig6_comparison.run(["sk-2005"], ["gve", "cugraph"])
        assert "OOM" in fig6_comparison.report(result)

    def test_table1(self):
        result = table1_speedup.run(SMALL)
        assert set(result.measured) == {"original", "igraph",
                                        "networkit", "cugraph"}
        assert result.measured["original"] > result.measured["networkit"]
        assert "436" in table1_speedup.report(result)


class TestFig12:
    def test_six_variants(self):
        result = fig1_fig2_refinement.run(["asia_osm"])
        assert len(result.outcomes) == 6
        base = result.outcomes["greedy-default"]
        assert base.mean_relative_runtime(base) == pytest.approx(1.0)
        report = fig1_fig2_refinement.report(result)
        assert "random-heavy" in report


class TestFig34:
    def test_two_labels(self):
        result = fig3_fig4_supervertex.run(["asia_osm"])
        assert result.mean_relative_runtime("move") == pytest.approx(1.0)
        assert 0 < result.mean_quality("refine") <= 1
        assert "move" in fig3_fig4_supervertex.report(result)


class TestFig7:
    def test_splits(self):
        result = fig7_splits.run(SMALL)
        for g in SMALL:
            assert sum(result.phase_fractions[g].values()) == pytest.approx(1.0)
            assert sum(result.pass_fractions[g]) == pytest.approx(1.0)
        mean = result.mean_phase_fractions()
        assert sum(mean.values()) == pytest.approx(1.0)
        assert "Figure 7(a)" in fig7_splits.report(result)


class TestFig8:
    def test_rates(self):
        result = fig8_rate.run(SMALL)
        assert all(v > 0 for v in result.seconds_per_edge.values())
        assert "runtime/|E|" in fig8_rate.report(result)

    def test_road_rate_above_web(self):
        result = fig8_rate.run(["asia_osm", "indochina-2004"])
        assert result.seconds_per_edge["asia_osm"] > \
            result.seconds_per_edge["indochina-2004"]


class TestFig9:
    def test_speedups(self):
        result = fig9_scaling.run(["asia_osm"])
        sp = result.speedups("asia_osm")
        assert sp[1] == pytest.approx(1.0)
        assert sp[64] > sp[2] > 1.0
        per_doubling = result.mean_speedup_per_doubling()
        assert 1.2 < per_doubling < 2.0
        assert "Figure 9" in fig9_scaling.report(result)


class TestSec55:
    def test_estimates(self):
        result = sec55_indirect.run()
        assert result.gve_vs_original > 10
        est = result.estimates
        assert est["KatanaGraph Leiden"] > est["ParLeiden-S"]
        assert "ParLeiden-S" in sec55_indirect.report(result)
