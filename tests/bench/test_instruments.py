"""Tests for phase/pass split and scaling instrumentation."""

import pytest

from repro.bench.instruments import (
    pass_split,
    phase_scaling_curves,
    phase_split,
    scaling_curve,
)
from repro.core.leiden import leiden
from repro.core.result import ALL_PHASES
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def result():
    return leiden(random_graph(n=300, avg_degree=8, seed=1))


class TestPhaseSplit:
    def test_fractions_sum_to_one(self, result):
        split = phase_split(result, num_threads=8)
        assert sum(split.values()) == pytest.approx(1.0)
        assert set(split) == set(ALL_PHASES)

    def test_all_nonnegative(self, result):
        assert all(v >= 0 for v in phase_split(result).values())


class TestPassSplit:
    def test_fractions_sum_to_one(self, result):
        fr = pass_split(result, num_threads=8)
        assert len(fr) == result.num_passes
        assert sum(fr) == pytest.approx(1.0)

    def test_first_pass_dominates_on_dense_graph(self, result):
        fr = pass_split(result, num_threads=8, work_scale=1000)
        assert fr[0] == max(fr)


class TestScalingCurve:
    def test_monotone(self, result):
        curve = scaling_curve(result, [1, 2, 4, 8], work_scale=1000)
        vals = [curve[t] for t in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_phase_curves_consistent_with_total(self, result):
        total = scaling_curve(result, [4], work_scale=1000)[4]
        phases = phase_scaling_curves(result, [4], work_scale=1000)
        assert sum(c[4] for c in phases.values()) == pytest.approx(total)
