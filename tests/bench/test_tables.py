"""Tests for table/series formatting helpers."""

import math

import pytest

from repro.bench.tables import (
    format_series,
    format_table,
    geometric_mean,
    ratio_summary,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]
        # all rows same width
        assert len({len(l) for l in lines[:1] + lines[2:]}) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_none_and_nan_render_dash(self):
        out = format_table(["x", "y"], [[None, float("nan")]])
        assert out.splitlines()[-1].split("|")[0].strip() == "-"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.000123]])
        assert "0.000123" in out

    def test_series(self):
        out = format_series("t", "s", {1: 0.5, 2: 0.25})
        assert "0.5" in out and "0.25" in out


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_filters_none(self):
        assert geometric_mean([2.0, None, 8.0]) == pytest.approx(4.0)


class TestRatioSummary:
    def test_basic(self):
        num = {"a": 4.0, "b": 9.0}
        den = {"a": 2.0, "b": 3.0}
        assert ratio_summary(num, den) == pytest.approx((2 * 3) ** 0.5)

    def test_skips_missing_keys(self):
        assert ratio_summary({"a": 4.0, "c": 1.0}, {"a": 2.0}) == \
            pytest.approx(2.0)

    def test_skips_none(self):
        assert ratio_summary({"a": 4.0, "b": None}, {"a": 2.0, "b": 1.0}) == \
            pytest.approx(2.0)
