"""Tests for the ``python -m repro.bench`` entry point."""


import repro.bench.__main__ as bench_main


class _StubModule:
    __name__ = "repro.bench.experiments.stub"
    calls = 0

    @classmethod
    def main(cls):
        cls.calls += 1


class TestMain:
    def test_filter_selects_experiments(self, monkeypatch, capsys):
        _StubModule.calls = 0
        monkeypatch.setattr(
            bench_main, "ALL_EXPERIMENTS",
            [("Stub A", _StubModule), ("Other B", _StubModule)],
        )
        assert bench_main.main(["stub"]) == 0
        assert _StubModule.calls == 1
        out = capsys.readouterr().out
        assert "Stub A" in out and "Other B" not in out

    def test_no_filter_runs_all(self, monkeypatch, capsys):
        _StubModule.calls = 0
        monkeypatch.setattr(
            bench_main, "ALL_EXPERIMENTS",
            [("A", _StubModule), ("B", _StubModule)],
        )
        assert bench_main.main([]) == 0
        assert _StubModule.calls == 2

    def test_report_mode(self, monkeypatch, tmp_path, capsys):
        written = {}

        def fake_generate(seed=42):
            written["seed"] = seed
            return "REPORT"

        def fake_write(report, markdown_path=None, json_path=None):
            written["md"] = markdown_path
            written["json"] = json_path

        import repro.bench.report as report_mod
        monkeypatch.setattr(report_mod, "generate_report", fake_generate)
        monkeypatch.setattr(report_mod, "write_report", fake_write)
        md = tmp_path / "r.md"
        assert bench_main.main(["--output", str(md), "--seed", "7"]) == 0
        assert written["seed"] == 7
        assert written["md"] == str(md)
