"""Tests for the text-mode chart rendering."""


from repro.bench.ascii_charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_proportional_lengths(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        line_a, line_b = out.splitlines()
        assert line_b.count("█") > line_a.count("█")

    def test_max_fills_width(self):
        out = bar_chart({"big": 5.0}, width=8)
        assert "█" * 8 in out

    def test_log_scale_compresses(self):
        linear = bar_chart({"a": 1.0, "b": 1000.0}, width=20)
        logged = bar_chart({"a": 1.0, "b": 1000.0}, width=20, log=True)
        a_lin = linear.splitlines()[0].count("█")
        a_log = logged.splitlines()[0].count("█")
        assert a_log > a_lin  # small value visible on log scale

    def test_title_and_values(self):
        out = bar_chart({"x": 3.5}, title="T", fmt="{:.1f}")
        assert out.splitlines()[0] == "T"
        assert "3.5" in out

    def test_skips_none(self):
        out = bar_chart({"a": 1.0, "b": None})
        assert "b" not in out

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"


class TestGroupedBarChart:
    def test_groups_and_missing(self):
        out = grouped_bar_chart(
            {"g1": {"x": 1.0, "y": None}, "g2": {"x": 2.0}},
            missing="(OOM)",
        )
        assert "g1:" in out and "g2:" in out
        assert "(OOM)" in out

    def test_shared_scale(self):
        out = grouped_bar_chart({"g1": {"x": 1.0}, "g2": {"x": 4.0}},
                                width=8)
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[1].count("█") > lines[0].count("█")

    def test_empty(self):
        assert grouped_bar_chart({}, title="t") == "t"


class TestLineChart:
    def test_renders_axes_and_legend(self):
        out = line_chart({"s": {1: 1.0, 2: 2.0, 4: 3.0}})
        assert "└" in out and "┐" in out
        assert "legend: o=s" in out
        assert "1  2  4" in out

    def test_multiple_series_glyphs(self):
        out = line_chart({
            "a": {1: 1.0, 2: 2.0},
            "b": {1: 2.0, 2: 1.0},
        })
        assert "o=a" in out and "x=b" in out
        body = "\n".join(out.splitlines()[1:-2])
        assert "o" in body and "x" in body

    def test_monotone_series_slopes_up(self):
        out = line_chart({"s": {1: 1.0, 2: 2.0, 3: 3.0}}, height=6, width=12)
        rows = [i for i, l in enumerate(out.splitlines()) if "o" in l]
        assert rows == sorted(rows)  # later x at higher row index? visual only
        assert len(rows) >= 2

    def test_empty(self):
        assert line_chart({}, title="t") == "t"
