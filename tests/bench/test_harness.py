"""Tests for the run-matrix harness (on the two smallest graphs)."""

import pytest

from repro.bench.harness import (
    RunRecord,
    paper_scale,
    run_matrix,
    run_once,
)

SMALL = "asia_osm"


class TestPaperScale:
    def test_scale_is_large(self):
        assert paper_scale(SMALL) > 100

    def test_matches_spec_ratio(self):
        from repro.datasets.registry import graph_spec, load_graph
        spec = graph_spec(SMALL)
        g = load_graph(SMALL)
        assert paper_scale(SMALL) == pytest.approx(
            spec.paper_edges / g.num_edges
        )


class TestRunOnce:
    def test_gve_record(self):
        rec = run_once("gve", SMALL, seed=42)
        assert rec.ok
        assert rec.modeled_seconds > 0
        assert rec.wall_seconds > 0
        assert 0 < rec.modularity <= 1
        assert rec.num_communities > 1
        assert rec.disconnected_fraction == 0.0

    def test_memoized(self):
        a = run_once("gve", SMALL, seed=42)
        b = run_once("gve", SMALL, seed=42)
        assert a is b

    def test_oom_recorded_as_failure(self):
        rec = run_once("cugraph", "sk-2005", seed=42)
        assert not rec.ok
        assert "memory" in rec.failure
        assert rec.modeled_seconds is None

    def test_unscaled_option(self):
        rec = run_once("gve", SMALL, seed=7, use_paper_scale=False)
        scaled = run_once("gve", SMALL, seed=7)
        assert rec.modeled_seconds < scaled.modeled_seconds


class TestRunMatrix:
    def test_shape(self):
        records = run_matrix([SMALL], ["gve", "networkit"], seed=42)
        assert set(records) == {SMALL}
        assert set(records[SMALL]) == {"gve", "networkit"}
        assert all(isinstance(r, RunRecord)
                   for r in records[SMALL].values())
