"""Tests for the consolidated report writer (on a two-graph subset)."""

import json

import pytest

from repro.bench.report import generate_report, write_report

SMALL = ["asia_osm", "com-Orkut"]


@pytest.fixture(scope="module")
def report():
    return generate_report(SMALL)


class TestGenerateReport:
    def test_all_sections_present(self, report):
        titles = [t for t, _ in report.sections]
        assert len(titles) == 9
        assert any("Table 1" in t for t in titles)
        assert any("Figure 9" in t for t in titles)
        assert any("Section 5.5" in t for t in titles)

    def test_summary_keys(self, report):
        assert set(report.summary) >= {
            "table1", "table2", "fig1_fig2", "fig3_fig4",
            "fig6_mean_speedups", "fig7_mean_phase_fractions",
            "fig8_family_means", "fig9_mean_speedups", "sec55",
        }

    def test_summary_values_sane(self, report):
        assert report.summary["table1"]["measured"]["original"] > 1
        assert set(report.summary["table2"]) == set(SMALL)
        fr = report.summary["fig7_mean_phase_fractions"]
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_markdown_renders(self, report):
        md = report.to_markdown()
        assert md.startswith("# GVE-Leiden reproduction")
        assert "## Table 1" in md
        assert "```" in md

    def test_json_roundtrips(self, report):
        data = json.loads(report.to_json())
        assert data["sec55"]["gve_vs_original"] > 1


class TestWriteReport:
    def test_writes_files(self, report, tmp_path):
        md = tmp_path / "report.md"
        js = tmp_path / "report.json"
        write_report(report, markdown_path=md, json_path=js)
        assert md.read_text().startswith("# GVE-Leiden")
        assert json.loads(js.read_text())

    def test_partial_write(self, report, tmp_path):
        md = tmp_path / "only.md"
        write_report(report, markdown_path=md)
        assert md.exists()
