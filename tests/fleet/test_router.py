"""Router: replication, failover semantics, fan-out merge determinism."""

import json

import numpy as np
import pytest

from repro.fleet.fleet import FleetConfig, PartitionFleet
from repro.service.fingerprint import partition_key
from tests.conftest import (
    path_graph,
    ring_of_cliques_graph,
    star_graph,
    two_cliques_graph,
)


def make_fleet(shards=3, replicas=1, **kwargs):
    return PartitionFleet(
        FleetConfig(num_shards=shards, replicas=replicas, virtual_nodes=32),
        **kwargs)


GRAPH_MAKERS = (two_cliques_graph, ring_of_cliques_graph, path_graph,
                star_graph)


def detect_all(fleet):
    keys = {}
    for make in GRAPH_MAKERS:
        t = fleet.detect(make())
        assert t.status == "done"
        keys[make.__name__] = t.response["key"]
    return keys


class TestRouting:
    def test_detect_routes_to_placement_primary(self):
        fleet = make_fleet(shards=3)
        g = two_cliques_graph()
        key = partition_key(g)
        ticket = fleet.detect(g)
        assert ticket.shard == fleet.ring.primary(key)
        assert ticket.response["fleet_state"] == "ok"

    def test_writes_replicated_to_all_placement_shards(self):
        fleet = make_fleet(shards=4, replicas=2)
        keys = detect_all(fleet)
        for key in keys.values():
            placement = fleet.ring.placement(key)
            assert len(placement) == 2
            for sid in placement:
                entry = fleet.shards[sid].server.store.peek(key)
                assert entry is not None
            others = set(fleet.shards) - set(placement)
            for sid in others:
                assert fleet.shards[sid].server.store.peek(key) is None

    def test_replicas_hold_identical_partitions(self):
        fleet = make_fleet(shards=3, replicas=3)
        g = ring_of_cliques_graph()
        key = fleet.detect(g).response["key"]
        entries = [sh.server.store.peek(key)
                   for sh in fleet.shards.values()]
        assert all(e is not None for e in entries)
        for e in entries[1:]:
            assert np.array_equal(e.membership, entries[0].membership)
            assert e.version == entries[0].version

    def test_query_served_by_primary_when_healthy(self):
        fleet = make_fleet(shards=3, replicas=2)
        key = fleet.detect(two_cliques_graph()).response["key"]
        t = fleet.query(key, "community_of", vertex=0)
        assert t.shard == fleet.ring.primary(key)
        assert not t.failover
        assert t.response["state"] == "fresh"


class TestFailover:
    def test_kill_primary_fails_over_degraded(self):
        fleet = make_fleet(shards=3, replicas=2)
        key = fleet.detect(two_cliques_graph()).response["key"]
        primary, replica = fleet.ring.placement(key)
        fleet.kill(primary)
        t = fleet.query(key, "community_of", vertex=0)
        assert t.status == "done"
        assert t.failover
        assert t.shard == replica
        assert t.response["state"] == "degraded"
        assert t.response["fleet_state"] == "degraded"
        assert fleet.router.counters["degraded_serves"] == 1
        assert fleet.router.counters["failed_requests"] == 0

    def test_no_alive_replica_fails_cleanly(self):
        fleet = make_fleet(shards=2, replicas=1)
        key = fleet.detect(two_cliques_graph()).response["key"]
        fleet.kill(fleet.ring.primary(key))
        t = fleet.query(key, "community_of", vertex=0)
        assert t.status == "failed"
        assert t.no_replica
        assert "no alive replica" in t.response["error"]
        assert fleet.router.counters["no_replica"] == 1
        assert fleet.router.counters["failed_requests"] == 1

    def test_revive_restores_primary_service(self):
        fleet = make_fleet(shards=3, replicas=2)
        key = fleet.detect(two_cliques_graph()).response["key"]
        primary = fleet.ring.primary(key)
        fleet.kill(primary)
        assert fleet.query(key, "membership").failover
        fleet.revive(primary)
        t = fleet.query(key, "membership")
        assert not t.failover
        assert t.shard == primary
        assert t.response["state"] == "fresh"

    def test_kill_fails_queued_tickets(self):
        fleet = make_fleet(shards=1)
        key = fleet.detect(two_cliques_graph()).response["key"]
        queued = fleet.router.submit_query(key, "membership")
        failed = fleet.kill("shard-0")
        assert failed == 1
        fleet.router.pump()
        assert queued.status == "failed"


class TestFanout:
    def test_merge_sorted_and_byte_deterministic(self):
        fleet = make_fleet(shards=3)
        detect_all(fleet)
        doc1 = fleet.fanout_query("membership")
        doc2 = fleet.fanout_query("membership")
        assert doc1["schema"] == "repro.fleet-fanout/1"
        assert list(doc1["answers"]) == sorted(doc1["answers"])
        assert list(doc1["shards"]) == sorted(doc1["shards"])
        assert (json.dumps(doc1, sort_keys=True)
                == json.dumps(doc2, sort_keys=True))

    def test_answers_invariant_across_shard_counts(self):
        docs = {}
        for shards in (1, 2, 4):
            fleet = make_fleet(shards=shards)
            detect_all(fleet)
            doc = fleet.fanout_query("membership")
            docs[shards] = (
                fleet.router.fanout_invariant_digest(doc), doc["answers"])
        digests = {d for d, _ in docs.values()}
        assert len(digests) == 1
        answers = [a for _, a in docs.values()]
        assert answers[0] == answers[1] == answers[2]

    def test_fanout_reports_degraded_keys(self):
        fleet = make_fleet(shards=3, replicas=2)
        keys = detect_all(fleet)
        target = keys["two_cliques_graph"]
        fleet.kill(fleet.ring.primary(target))
        doc = fleet.fanout_query("community_of", vertex=0)
        assert target in doc["degraded"]
        assert doc["states"][target] == "degraded"
        assert doc["failed"] == []

    def test_fanout_vertex_param_recorded(self):
        fleet = make_fleet(shards=2)
        detect_all(fleet)
        doc = fleet.fanout_query("community_of", vertex=3)
        assert doc["params"] == {"vertex": 3}
        for key, value in doc["answers"].items():
            assert isinstance(value, int)


class TestAccounting:
    def test_imbalance_gauge(self):
        fleet = make_fleet(shards=2)
        key = fleet.detect(two_cliques_graph()).response["key"]
        for _ in range(4):
            fleet.query(key, "membership")
        loads = fleet.router.routed_by_shard
        expected = max(loads.values()) / (sum(loads.values()) / 2)
        assert fleet.router.imbalance() == pytest.approx(expected)

    def test_router_stats_sorted_and_complete(self):
        fleet = make_fleet(shards=2)
        detect_all(fleet)
        stats = fleet.router.stats()
        assert set(stats) == {"requests", "counters", "per_shard"}
        assert list(stats["counters"]) == sorted(stats["counters"])
        assert stats["requests"]["detect"] == len(GRAPH_MAKERS)
