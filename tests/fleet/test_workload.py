"""Fleet workload: determinism, verification, kill script, CLI."""

import json

import pytest

from repro.errors import ConfigError
from repro.fleet.fleet import FleetConfig
from repro.fleet.workload import (
    FLEET_PROFILES,
    FleetWorkloadProfile,
    run_fleet_workload,
)

#: A miniature profile over the fast registry graphs so the suite
#: stays quick; the committed fleet_quick.json baseline covers the
#: full-size profiles.
MINI = FleetWorkloadProfile(
    "mini", ("com-Orkut",), num_queries=8, update_bursts=1, burst_size=2,
    edges_per_update=2, herd_detects=2, fanout_every=4)


class TestProfiles:
    def test_known_profiles(self):
        assert set(FLEET_PROFILES) == {"tiny", "quick", "smoke"}

    def test_unknown_profile_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown fleet workload"):
            run_fleet_workload("bogus")


class TestRun:
    def test_mini_run_verifies_and_is_deterministic(self):
        docs = []
        for _ in range(2):
            res = run_fleet_workload(
                MINI, seed=3,
                fleet_config=FleetConfig(num_shards=2, replicas=2,
                                         virtual_nodes=16))
            assert all(res.membership_matches_scratch.values())
            assert all(res.replicas_consistent.values())
            docs.append(json.dumps(res.to_json_dict(), sort_keys=True))
        assert docs[0] == docs[1]

    def test_herd_detects_coalesce_per_shard(self):
        res = run_fleet_workload(
            MINI, seed=3,
            fleet_config=FleetConfig(num_shards=2, replicas=2,
                                     virtual_nodes=16))
        shards = res.stats["shards"]
        coalesced = sum(s["queue"]["coalesced_detects"]
                        for s in shards.values())
        # herd_detects duplicates per replica of the one graph.
        assert coalesced == MINI.herd_detects * 2
        solves = sum(s["counters"]["detect_runs"] for s in shards.values())
        assert solves == 2  # one solve per replica, herd absorbed

    def test_kill_script_primary_token(self):
        res = run_fleet_workload(
            MINI, seed=3,
            fleet_config=FleetConfig(num_shards=3, replicas=2,
                                     virtual_nodes=16),
            kills=[("primary", 2)])
        assert len(res.kills_applied) == 1
        c = res.stats["router"]["counters"]
        assert c["failed_requests"] == 0
        assert c["degraded_serves"] > 0

    def test_kill_script_bad_target_rejected(self):
        with pytest.raises(ConfigError, match="kill"):
            run_fleet_workload(
                MINI, seed=3,
                fleet_config=FleetConfig(num_shards=2, virtual_nodes=16),
                kills=[("nonsense", 2)])
        with pytest.raises(ConfigError, match="out of range"):
            run_fleet_workload(
                MINI, seed=3,
                fleet_config=FleetConfig(num_shards=2, virtual_nodes=16),
                kills=[("7", 2)])

    def test_fanout_digest_invariant_across_widths(self):
        digests = set()
        for shards in (1, 3):
            res = run_fleet_workload(
                MINI, seed=3,
                fleet_config=FleetConfig(num_shards=shards,
                                         virtual_nodes=16))
            digests.add(res.fanout_digest)
        assert len(digests) == 1
