"""Fleet request tracing: span chains, failover accounting, determinism."""

import json
import os
import subprocess
import sys

from repro.fleet.fleet import FleetConfig, PartitionFleet
from repro.fleet.workload import run_fleet_workload
from repro.observability.health import HealthEvaluator, default_fleet_slos
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import validate_chrome_trace
from repro.observability.reqtrace import (
    DETERMINISTIC_KEEP_REASONS,
    RequestTracer,
    validate_reqtrace,
)
from tests.conftest import two_cliques_graph


def traced_fleet(shards=3, replicas=2, *, mode="full", metrics=None):
    tracer = RequestTracer(seed=0, mode=mode)
    fleet = PartitionFleet(
        FleetConfig(num_shards=shards, replicas=replicas, virtual_nodes=32),
        metrics=metrics,
        reqtrace=tracer,
    )
    return fleet, tracer


def run_traced_workload(shards, *, mode="full", profile="tiny", seed=0):
    tracer = RequestTracer(seed=seed, mode=mode)
    fleet = PartitionFleet(
        FleetConfig(num_shards=shards, replicas=1),
        health=HealthEvaluator(default_fleet_slos()),
        reqtrace=tracer,
    )
    run_fleet_workload(profile, seed=seed, fleet=fleet, verify=False)
    return tracer.to_json_dict()


class TestSpanChains:
    def test_ok_request_has_complete_chain(self):
        fleet, tracer = traced_fleet()
        t = fleet.detect(two_cliques_graph())
        assert t.status == "done"
        trace = tracer.kept_traces()[0]
        names = [s.name for s in trace.spans]
        assert names[0] == "admission"
        assert names[-1] == "reply"
        assert "queue_wait" in names
        assert any(n.startswith("serve.") for n in names)
        # Router spans on the router lane, shard spans on the shard lane.
        assert trace.lanes()[0] == "router"
        assert t.shard in trace.lanes()

    def test_failover_request_chain_is_complete_and_kept(self):
        fleet, tracer = traced_fleet()
        key = fleet.detect(two_cliques_graph()).response["key"]
        primary, replica = fleet.ring.placement(key)
        fleet.kill(primary)
        t = fleet.query(key, "community_of", vertex=0)
        assert t.failover and t.status == "done"
        trace = tracer.kept_traces()[-1]
        assert trace.failover
        assert trace.fleet_state == "degraded"
        assert set(trace.keep_reasons) >= {"degraded", "failover"}
        admission = trace.spans[0]
        assert admission.attrs["failover"] is True
        assert admission.attrs["routed"] == [replica]
        assert replica in trace.lanes()
        assert trace.spans[-1].attrs["status"] == "done"

    def test_dedup_follower_links_leader(self):
        fleet, tracer = traced_fleet(shards=1, replicas=1)
        g = two_cliques_graph()
        lead = fleet.router.submit_detect(g)
        follow = fleet.router.submit_detect(g)
        fleet.router.pump()
        assert follow.tickets[0][1] is lead.tickets[0][1]
        linked = [s for t in tracer.kept_traces() for s in t.spans
                  if s.name == "dedup_join"]
        assert len(linked) == 1
        assert linked[0].link == lead.trace.trace_id

    def test_chrome_view_has_flow_chain_per_request(self):
        fleet, tracer = traced_fleet()
        key = fleet.detect(two_cliques_graph()).response["key"]
        fleet.kill(fleet.ring.placement(key)[0])
        fleet.query(key, "membership")
        doc = tracer.to_chrome_trace()
        summary = validate_chrome_trace(doc)
        assert summary["flows"] == len(tracer.kept_traces())
        # The failover trace's flow starts on the router lane and ends
        # there too (reply), crossing the serving shard in between.
        flow = [e for e in doc["traceEvents"]
                if e.get("cat") == "reqflow" and e["id"] == 1]
        assert [e["ph"] for e in flow] == (
            ["s"] + ["t"] * (len(flow) - 2) + ["f"])


class TestFailoverAccounting:
    def test_degraded_served_counts_done_failovers(self):
        m = MetricsRegistry()
        fleet, _ = traced_fleet(metrics=m)
        key = fleet.detect(two_cliques_graph()).response["key"]
        fleet.kill(fleet.ring.placement(key)[0])
        t = fleet.query(key, "community_of", vertex=0)
        assert t.status == "done" and t.failover
        c = fleet.router._m_degraded_served
        assert c.value("done") == 1
        assert fleet.router.counters["failover_failed"] == 0

    def test_failover_while_error_lands_under_failed_status(self):
        # Kill the primary so the query fails over to the replica, then
        # kill the replica while the ticket is still queued: the request
        # dies on the failover path without ever being served DEGRADED.
        m = MetricsRegistry()
        fleet, tracer = traced_fleet(metrics=m)
        key = fleet.detect(two_cliques_graph()).response["key"]
        primary, replica = fleet.ring.placement(key)
        fleet.kill(primary)
        queued = fleet.router.submit_query(key, "membership")
        assert queued.failover
        fleet.kill(replica)
        fleet.router.pump()
        assert queued.status == "failed"
        assert fleet.router._m_degraded_served.value("failed") == 1
        assert fleet.router.counters["failover_failed"] == 1
        assert fleet.router.counters["degraded_serves"] == 0
        # The failed failover is always kept — under both reasons.
        trace = [t for t in tracer.kept_traces() if t.failover][0]
        assert set(trace.keep_reasons) >= {"error", "failover"}

    def test_latency_histogram_carries_trace_exemplars(self):
        m = MetricsRegistry()
        fleet, tracer = traced_fleet(metrics=m)
        fleet.detect(two_cliques_graph())
        data = fleet.router._m_latency._data[("detect",)]
        assert data.exemplars
        ids = {tid for _, tid in data.exemplars.values()}
        assert ids <= {t.trace_id for t in tracer.kept_traces()}


class TestDeterminism:
    def test_double_run_byte_identical_at_1_and_4_shards(self):
        for shards in (1, 4):
            a = run_traced_workload(shards)
            b = run_traced_workload(shards)
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True), f"shards={shards}"
            validate_reqtrace(a)

    def test_hashseed_does_not_leak_into_document(self, tmp_path):
        script = (
            "import json\n"
            "from tests.fleet.test_reqtrace_fleet import"
            " run_traced_workload\n"
            "print(json.dumps(run_traced_workload(2), sort_keys=True))\n"
        )
        docs = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env, cwd=os.getcwd(),
                capture_output=True, text=True, timeout=300)
            assert proc.returncode == 0, proc.stderr[-2000:]
            docs.append(proc.stdout)
        assert docs[0] == docs[1]

    def test_deterministic_keep_set_invariant_across_widths(self):
        kept_by_width = {}
        for shards in (1, 2, 4):
            doc = run_traced_workload(shards)
            kept_by_width[shards] = {
                t["trace_id"] for t in doc["traces"]
                if set(t["keep_reasons"]) & DETERMINISTIC_KEEP_REASONS}
        assert kept_by_width[1] == kept_by_width[2] == kept_by_width[4]

    def test_sampled_mode_drops_are_width_invariant_too(self):
        # The sampled documents keep supersets of the deterministic set;
        # restricted back to the deterministic reasons they agree.
        views = {}
        for shards in (1, 4):
            doc = run_traced_workload(shards, mode="sampled")
            views[shards] = {
                t["trace_id"] for t in doc["traces"]
                if set(t["keep_reasons"]) & DETERMINISTIC_KEEP_REASONS}
        assert views[1] == views[4]
