"""Fleet lifecycle: spawn/retire rebalance plans, kill, observability."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.fleet.fleet import FleetConfig, PartitionFleet
from repro.observability.health import HealthEvaluator, default_fleet_slos
from repro.observability.metrics import MetricsRegistry
from tests.conftest import (
    path_graph,
    ring_of_cliques_graph,
    star_graph,
    two_cliques_graph,
)

GRAPH_MAKERS = (two_cliques_graph, ring_of_cliques_graph, path_graph,
                star_graph)


def loaded_fleet(shards=3, replicas=2, **kwargs):
    fleet = PartitionFleet(
        FleetConfig(num_shards=shards, replicas=replicas, virtual_nodes=32),
        **kwargs)
    keys = {}
    for make in GRAPH_MAKERS:
        keys[make.__name__] = fleet.detect(make()).response["key"]
    return fleet, keys


def holders(fleet, key):
    return sorted(sid for sid, sh in fleet.shards.items()
                  if sh.server.store.peek(key) is not None)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            FleetConfig(num_shards=0)
        with pytest.raises(ServiceError):
            FleetConfig(replicas=0)
        with pytest.raises(ServiceError):
            FleetConfig(virtual_nodes=0)

    def test_shard_ids_in_spawn_order(self):
        fleet = PartitionFleet(FleetConfig(num_shards=3))
        assert list(fleet.shards) == ["shard-0", "shard-1", "shard-2"]


class TestRebalance:
    def test_spawn_executes_minimal_plan(self):
        fleet, keys = loaded_fleet(shards=3, replicas=2)
        sid, plan = fleet.spawn()
        assert sid == "shard-3"
        assert plan.total_keys == len(keys)
        # Minimality: only keys whose owner set changed moved, and the
        # store layout now matches the new ring exactly.
        assert plan.num_moved < plan.total_keys or plan.total_keys <= 1
        for key in keys.values():
            assert holders(fleet, key) == sorted(fleet.ring.placement(key))

    def test_retire_moves_keys_to_survivors(self):
        fleet, keys = loaded_fleet(shards=3, replicas=2)
        clock_before = fleet.clock_units()
        fleet.retire("shard-1")
        assert "shard-1" not in fleet.shards
        for key in keys.values():
            placement = fleet.ring.placement(key)
            assert "shard-1" not in placement
            assert holders(fleet, key) == sorted(placement)
        # Retired shard's clock folds into the fleet accumulator.
        assert fleet.clock_units() >= clock_before

    def test_retire_last_shard_rejected(self):
        fleet = PartitionFleet(FleetConfig(num_shards=1))
        with pytest.raises(ServiceError):
            fleet.retire("shard-0")

    def test_rebalance_replica_change(self):
        fleet, keys = loaded_fleet(shards=3, replicas=1)
        plan = fleet.rebalance(replicas=2)
        assert plan.num_moved > 0
        for key in keys.values():
            assert len(fleet.ring.placement(key)) == 2
            assert holders(fleet, key) == sorted(fleet.ring.placement(key))

    def test_queries_survive_spawn_and_retire(self):
        fleet, keys = loaded_fleet(shards=2, replicas=2)
        expected = {
            name: np.asarray(
                fleet.query(key, "membership").response["value"]).copy()
            for name, key in keys.items()
        }
        fleet.spawn()
        fleet.retire("shard-0")
        for name, key in keys.items():
            t = fleet.query(key, "membership")
            assert t.status == "done"
            assert np.array_equal(
                np.asarray(t.response["value"]), expected[name])


class TestKillAcceptance:
    def test_killing_one_replica_of_r2_zero_failed_requests(self):
        # The acceptance criterion: R=2, kill one replica, every
        # subsequent request still answers (DEGRADED at worst).
        fleet, keys = loaded_fleet(shards=3, replicas=2)
        victim = fleet.ring.primary(keys["two_cliques_graph"])
        fleet.kill(victim)
        for key in keys.values():
            t = fleet.query(key, "membership")
            assert t.status == "done"
        c = fleet.router.counters
        assert c["failed_requests"] == 0
        assert c["degraded_serves"] > 0


class TestObservability:
    def test_merged_metrics_snapshot(self):
        fleet, keys = loaded_fleet(
            shards=2, replicas=1, metrics=MetricsRegistry())
        key = keys["two_cliques_graph"]
        fleet.query(key, "membership")
        snap = fleet.metrics_snapshot()
        assert snap["schema"] == "repro.metrics/1"
        fams = snap["families"]
        assert "fleet_requests_total" in fams
        # Per-shard counters sum across shard registries: every detect
        # (replicated or not) appears in the merged service counter.
        series = fams["service_requests_total"]["series"]
        done_detects = sum(
            s["value"] for s in series
            if s["labels"].get("kind") == "detect")
        assert done_detects == len(GRAPH_MAKERS)

    def test_health_block_on_fleet_clock(self):
        fleet, keys = loaded_fleet(
            shards=2, replicas=1,
            metrics=MetricsRegistry(),
            health=HealthEvaluator(default_fleet_slos()))
        fleet.query(keys["path_graph"], "membership")
        doc = fleet.stats()
        assert doc["health"]["schema"] == "repro.health/1"
        assert doc["health"]["clock"] == fleet.clock_units()
        names = {o["name"] for o in doc["health"]["objectives"]}
        assert names == {"fleet_query_latency_p99", "fleet_error_ratio",
                         "fleet_shard_imbalance"}

    def test_stats_document_shape(self):
        fleet, _keys = loaded_fleet(shards=2)
        doc = fleet.stats()
        assert doc["schema"] == "repro.fleet-stats/1"
        assert set(doc["shards"]) == set(fleet.shards)
        assert doc["clock_units"] == sum(
            sh.server.clock for sh in fleet.shards.values())
        assert doc["derived"]["imbalance"] >= 1.0
