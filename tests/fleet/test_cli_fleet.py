"""``repro fleet`` / ``repro serve`` CLI: profile validation, faults."""

import json

from repro.cli import main


class TestProfileValidation:
    def test_serve_unknown_profile_exits_2_with_list(self, capsys):
        assert main(["serve", "--workload", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "VALID workload profile tiny" in err
        assert "VALID workload profile quick" in err
        assert "VALID workload profile smoke" in err
        assert "error: unknown workload profile 'bogus'" in err

    def test_fleet_unknown_profile_exits_2_with_list(self, capsys):
        assert main(["fleet", "--profile", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "VALID fleet workload profile tiny" in err
        assert "error: unknown fleet workload profile 'bogus'" in err

    def test_fleet_bad_kill_spec_exits_2(self, capsys):
        assert main(["fleet", "--profile", "tiny",
                     "--kill", "nonsense"]) == 2
        assert "bad --kill spec" in capsys.readouterr().err

    def test_fleet_bad_shard_count_exits_2(self, capsys):
        assert main(["fleet", "--profile", "tiny", "--shards", "0"]) == 2
        assert "num_shards" in capsys.readouterr().err


class TestFleetRun:
    def test_tiny_run_writes_deterministic_stats(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        for out in (out_a, out_b):
            assert main(["fleet", "--shards", "3", "--profile", "tiny",
                         "--compact", "--output", str(out)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        doc = json.loads(out_a.read_text())
        assert doc["schema"] == "repro.fleet-workload/1"
        assert all(doc["membership_matches_scratch"].values())
        assert all(doc["replicas_consistent"].values())

    def test_kill_script_degrades_without_errors(self, tmp_path):
        out = tmp_path / "killed.json"
        assert main(["fleet", "--shards", "3", "--replicas", "2",
                     "--profile", "tiny", "--kill", "primary:10",
                     "--compact", "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        counters = doc["stats"]["router"]["counters"]
        assert counters["failed_requests"] == 0
        assert counters["degraded_serves"] > 0
        assert doc["kills_applied"] == [
            {"at_query": 10, "shard": doc["kills_applied"][0]["shard"]}]

    def test_metrics_output_merged_snapshot(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        metrics = tmp_path / "metrics.json"
        assert main(["fleet", "--shards", "2", "--profile", "tiny",
                     "--compact", "--output", str(out),
                     "--metrics", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert snap["schema"] == "repro.metrics/1"
        names = set(snap["families"])
        assert "fleet_requests_total" in names
        assert "service_requests_total" in names  # merged from shards
        assert "queue_rejected_total" in names
        assert snap["health"]["schema"] == "repro.health/1"
