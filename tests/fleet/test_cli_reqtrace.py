"""``repro fleet/serve --reqtrace`` and the ``repro reqtrace`` inspector."""

import json

import pytest

from repro.cli import main
from repro.observability.profiler import validate_chrome_trace
from repro.observability.reqtrace import validate_reqtrace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One tiny fleet run with --reqtrace; shared by the read-only tests."""
    d = tmp_path_factory.mktemp("reqtrace")
    out = d / "reqtrace.json"
    assert main(["fleet", "--shards", "2", "--profile", "tiny",
                 "--no-verify", "--reqtrace", str(out)]) == 0
    return out


class TestFleetFlag:
    def test_double_run_byte_identical(self, tmp_path):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(["fleet", "--shards", "2", "--profile", "tiny",
                         "--no-verify", "--reqtrace", str(out)]) == 0
            outs.append(out)
        assert outs[0].read_bytes() == outs[1].read_bytes()
        doc = json.loads(outs[0].read_text())
        validate_reqtrace(doc)
        assert doc["sampling"]["mode"] == "full"
        assert doc["meta"]["shards"] == 2

    def test_sampled_mode_drops_traces(self, tmp_path):
        out = tmp_path / "sampled.json"
        assert main(["fleet", "--shards", "2", "--profile", "tiny",
                     "--no-verify", "--reqtrace-mode", "sampled",
                     "--reqtrace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["sampling"]["mode"] == "sampled"
        assert doc["totals"]["dropped"] > 0
        assert all(t["keep_reasons"] for t in doc["traces"])

    def test_chrome_view_validates(self, tmp_path):
        chrome = tmp_path / "reqtrace.chrome.json"
        assert main(["fleet", "--shards", "2", "--profile", "tiny",
                     "--no-verify", "--reqtrace-chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        summary = validate_chrome_trace(doc)
        assert summary["flows"] > 0
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "router" in names and len(names) >= 2

    def test_kill_run_keeps_failover_chains(self, tmp_path):
        out = tmp_path / "killed.json"
        assert main(["fleet", "--shards", "3", "--replicas", "2",
                     "--profile", "tiny", "--kill", "primary:10",
                     "--no-verify", "--reqtrace", str(out)]) == 0
        doc = json.loads(out.read_text())
        failovers = [t for t in doc["traces"] if t["failover"]]
        assert failovers
        for t in failovers:
            assert "failover" in t["keep_reasons"]
            names = [s["name"] for s in t["spans"]]
            assert names[0] == "admission" and names[-1] == "reply"


class TestServeFlag:
    def test_serve_reqtrace_document(self, tmp_path):
        out = tmp_path / "serve.json"
        assert main(["serve", "--workload", "tiny",
                     "--reqtrace", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_reqtrace(doc)
        assert doc["meta"]["experiment"] == "serve:tiny"
        assert doc["totals"]["requests"] > 0

    def test_serve_profile_merges_request_lanes(self, tmp_path):
        chrome = tmp_path / "serve.chrome.json"
        out = tmp_path / "serve.json"
        assert main(["serve", "--workload", "tiny",
                     "--profile", str(chrome),
                     "--reqtrace", str(out)]) == 0
        doc = json.loads(chrome.read_text())
        assert doc["otherData"]["reqtrace"]["kept"] > 0
        validate_chrome_trace(doc)


class TestInspector:
    def test_summary(self, traced_run, capsys):
        assert main(["reqtrace", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "schema: repro.reqtrace/1" in out
        assert "mode: full" in out
        assert "flight dumps: 0" in out

    def test_slowest_ranked_by_latency(self, traced_run, capsys):
        assert main(["reqtrace", str(traced_run), "--slowest", "3"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3
        lats = [float(line.split("latency=")[1].split()[0])
                for line in lines]
        assert lats == sorted(lats, reverse=True)

    def test_trace_id_prints_one_trace(self, traced_run, capsys):
        doc = json.loads(traced_run.read_text())
        tid = doc["traces"][0]["trace_id"]
        assert main(["reqtrace", str(traced_run), "--trace-id", tid]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["trace_id"] == tid

    def test_unknown_trace_id_exits_1(self, traced_run, capsys):
        assert main(["reqtrace", str(traced_run),
                     "--trace-id", "f" * 16]) == 1
        assert "not in document" in capsys.readouterr().err

    def test_diff_identical_exits_0(self, traced_run, tmp_path, capsys):
        twin = tmp_path / "twin.json"
        assert main(["fleet", "--shards", "2", "--profile", "tiny",
                     "--no-verify", "--reqtrace", str(twin)]) == 0
        capsys.readouterr()
        assert main(["reqtrace", "--diff", str(traced_run),
                     str(twin)]) == 0
        assert "kept sets identical" in capsys.readouterr().out

    def test_diff_full_vs_sampled_twin_is_clean(self, traced_run,
                                                tmp_path, capsys):
        # The contract the ext_fleet_reqtrace bench pins: the sampled
        # document keeps exactly what the full document annotates.
        sampled = tmp_path / "sampled.json"
        assert main(["fleet", "--shards", "2", "--profile", "tiny",
                     "--no-verify", "--reqtrace-mode", "sampled",
                     "--reqtrace", str(sampled)]) == 0
        capsys.readouterr()
        assert main(["reqtrace", "--diff", str(traced_run),
                     str(sampled)]) == 0

    def test_diff_divergent_exits_1(self, traced_run, tmp_path, capsys):
        other = tmp_path / "other.json"
        assert main(["fleet", "--shards", "3", "--replicas", "2",
                     "--profile", "tiny", "--kill", "primary:10",
                     "--no-verify", "--reqtrace", str(other)]) == 0
        capsys.readouterr()
        assert main(["reqtrace", "--diff", str(traced_run),
                     str(other)]) == 1
        assert "kept sets differ" in capsys.readouterr().out

    def test_invalid_document_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.reqtrace/0"}')
        assert main(["reqtrace", str(bad)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_diff_needs_two_inputs(self, traced_run, capsys):
        assert main(["reqtrace", "--diff", str(traced_run)]) == 2
        assert "expected 2" in capsys.readouterr().err
