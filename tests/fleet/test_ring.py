"""Consistent-hash ring: placement, edge cases, move-plan minimality."""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.fleet.ring import HashRing, plan_moves


def seeded_keys(n, tag="key"):
    """Deterministic fingerprint-shaped keys (blake2b hex, like
    ``partition_key``'s ``graph_fp:config_fp``)."""
    out = []
    for i in range(n):
        g = hashlib.blake2b(f"{tag}-{i}".encode(), digest_size=16)
        c = hashlib.blake2b(f"cfg-{i % 3}".encode(), digest_size=8)
        out.append(f"{g.hexdigest()}:{c.hexdigest()}")
    return out


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ServiceError):
            HashRing([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ServiceError):
            HashRing(["a", "b", "a"])

    def test_bad_vnodes_and_replicas_rejected(self):
        with pytest.raises(ServiceError):
            HashRing(["a"], virtual_nodes=0)
        with pytest.raises(ServiceError):
            HashRing(["a"], replicas=0)

    def test_construction_order_irrelevant(self):
        keys = seeded_keys(50)
        r1 = HashRing(["a", "b", "c"], replicas=2)
        r2 = HashRing(["c", "a", "b"], replicas=2)
        for key in keys:
            assert r1.placement(key) == r2.placement(key)


class TestEdgeCases:
    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"], replicas=1)
        for key in seeded_keys(25):
            assert ring.placement(key) == ("only",)
            assert ring.primary(key) == "only"

    def test_single_shard_with_large_r(self):
        # R > N must clamp to N, not loop or raise.
        ring = HashRing(["only"], replicas=5)
        for key in seeded_keys(10):
            assert ring.placement(key) == ("only",)

    def test_replicas_exceeding_shards_clamp(self):
        ring = HashRing(["a", "b", "c"], replicas=7)
        for key in seeded_keys(25):
            placement = ring.placement(key)
            assert len(placement) == 3
            assert sorted(placement) == ["a", "b", "c"]

    def test_placement_distinct_shards(self):
        ring = HashRing([f"s{i}" for i in range(5)], replicas=3)
        for key in seeded_keys(50):
            placement = ring.placement(key)
            assert len(placement) == len(set(placement)) == 3


class TestDeterminism:
    def test_placement_independent_of_pythonhashseed(self):
        # blake2b placement must not vary with interpreter hash
        # randomization: run the same placements in subprocesses with
        # different PYTHONHASHSEED values and compare.
        code = (
            "from repro.fleet.ring import HashRing\n"
            "import hashlib\n"
            "ring = HashRing(['a', 'b', 'c', 'd'], replicas=2)\n"
            "keys = [hashlib.blake2b(str(i).encode(), digest_size=16)"
            ".hexdigest() for i in range(20)]\n"
            "print(';'.join(','.join(ring.placement(k)) for k in keys))\n"
        )
        import repro
        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH", "")) if p)
            proc = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, env=env, timeout=120, check=True)
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1


class TestMovePlans:
    def test_identical_rings_move_nothing(self):
        keys = seeded_keys(40)
        ring = HashRing(["a", "b", "c"], replicas=2)
        same = HashRing(["a", "b", "c"], replicas=2)
        plan = plan_moves(ring, same, keys)
        assert plan.num_moved == 0
        assert plan.unchanged == len(keys)

    def test_resize_moves_about_k_over_n_keys(self):
        # The consistent-hashing bound: adding one shard to N moves
        # ~K/(N+1) primaries on average.  Property-test over several
        # seeded key populations; allow generous slack for vnode
        # variance but fail hard on rehash-everything behaviour.
        n = 4
        total_frac = 0.0
        trials = 5
        for t in range(trials):
            keys = seeded_keys(300, tag=f"pop{t}")
            old = HashRing([f"s{i}" for i in range(n)], virtual_nodes=96)
            new = HashRing([f"s{i}" for i in range(n + 1)],
                           virtual_nodes=96)
            plan = plan_moves(old, new, keys)
            frac = plan.num_primary_moved / len(keys)
            # A naive mod-N rehash would move ~(1 - 1/(N+1)) = 80%.
            assert frac < 0.45, f"trial {t}: moved {frac:.0%}"
            total_frac += frac
        avg = total_frac / trials
        assert avg < 1.5 / n, f"average moved fraction {avg:.0%}"
        assert avg > 0.0

    def test_moves_are_fetch_into_new_owners_only(self):
        keys = seeded_keys(100)
        old = HashRing(["a", "b", "c"], replicas=2)
        new = HashRing(["a", "b", "c", "d"], replicas=2)
        plan = plan_moves(old, new, keys)
        assert plan.total_keys == len(keys)
        for move in plan.moves:
            assert set(move.fetch) == set(move.new_placement) - set(
                move.old_placement)
            assert set(move.drop) == set(move.old_placement) - set(
                move.new_placement)
            # Growing the fleet only ever fetches onto the new shard.
            assert all(s == "d" for s in move.fetch)

    def test_duplicate_keys_counted_once(self):
        keys = seeded_keys(10)
        old = HashRing(["a", "b"])
        new = HashRing(["a", "b", "c"])
        plan = plan_moves(old, new, keys + keys)
        assert plan.total_keys == len(keys)

    def test_plan_json_roundtrip_fields(self):
        keys = seeded_keys(30)
        old = HashRing(["a", "b"], replicas=2)
        new = HashRing(["a", "b", "c"], replicas=2)
        doc = plan_moves(old, new, keys).to_json_dict()
        assert set(doc) == {"moves", "unchanged", "num_moved",
                            "num_primary_moved"}
        for move in doc["moves"]:
            assert set(move) == {"key", "old", "new", "fetch", "drop"}
