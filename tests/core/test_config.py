"""Tests for LeidenConfig and the paper's variants."""

import pytest

from repro.core.config import LeidenConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = LeidenConfig()
        assert cfg.tolerance == 0.01
        assert cfg.tolerance_drop == 10.0
        assert cfg.aggregation_tolerance == 0.8
        assert cfg.max_iterations == 20
        assert cfg.max_passes == 10
        assert cfg.refinement == "greedy"
        assert cfg.vertex_label == "move"
        assert cfg.threshold_scaling
        assert cfg.refine_guard == "cas"
        assert cfg.kernel_engine == "count"

    def test_sort_kernel_engine_accepted(self):
        assert LeidenConfig(kernel_engine="sort").kernel_engine == "sort"

    def test_hashable(self):
        assert hash(LeidenConfig()) == hash(LeidenConfig())
        assert LeidenConfig() != LeidenConfig(seed=1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"tolerance": -1.0},
        {"tolerance_drop": 1.0},
        {"strict_tolerance": -1e-9},
        {"aggregation_tolerance": 0.0},
        {"aggregation_tolerance": 1.5},
        {"max_iterations": 0},
        {"max_passes": 0},
        {"refinement": "hybrid"},
        {"vertex_label": "both"},
        {"engine": "gpu"},
        {"kernel_engine": "hash"},
        {"kernel_engine": "COUNT"},
        {"batch_size": 0},
        {"resolution": 0.0},
        {"refine_guard": "lock"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            LeidenConfig(**kwargs)

    def test_aggregation_tolerance_none_allowed(self):
        assert LeidenConfig(aggregation_tolerance=None).aggregation_tolerance is None


class TestVariants:
    def test_default_variant(self):
        cfg = LeidenConfig.variant("default")
        assert cfg.threshold_scaling
        assert cfg.aggregation_tolerance == 0.8

    def test_medium_disables_threshold_scaling(self):
        cfg = LeidenConfig.variant("medium")
        assert not cfg.threshold_scaling
        assert cfg.aggregation_tolerance == 0.8

    def test_heavy_disables_both(self):
        cfg = LeidenConfig.variant("heavy")
        assert not cfg.threshold_scaling
        assert cfg.aggregation_tolerance is None

    def test_variant_with_overrides(self):
        cfg = LeidenConfig.variant("medium", refinement="random")
        assert cfg.refinement == "random"

    def test_unknown_variant(self):
        with pytest.raises(ConfigError):
            LeidenConfig.variant("extreme")


class TestTolerance:
    def test_initial_with_scaling(self):
        assert LeidenConfig().initial_tolerance() == 0.01

    def test_initial_without_scaling(self):
        cfg = LeidenConfig(threshold_scaling=False, strict_tolerance=1e-7)
        assert cfg.initial_tolerance() == 1e-7

    def test_next_tolerance_drops(self):
        cfg = LeidenConfig()
        assert cfg.next_tolerance(0.01) == pytest.approx(0.001)

    def test_next_tolerance_fixed_without_scaling(self):
        cfg = LeidenConfig(threshold_scaling=False)
        assert cfg.next_tolerance(1e-6) == 1e-6

    def test_with_(self):
        cfg = LeidenConfig().with_(seed=99)
        assert cfg.seed == 99
        assert cfg.tolerance == 0.01
