"""Tests for the preallocated kernel workspace."""

import numpy as np
import pytest

from repro.core._kernels import segment_pair_sums_sort, segmented_argmax
from repro.core.workspace import KERNEL_ENGINES, KernelWorkspace
from repro.errors import ConfigError
from repro.parallel.runtime import Runtime


class TestConstruction:
    def test_default_engine_is_count(self):
        assert KernelWorkspace(10).engine == "count"

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_valid_engines(self, engine):
        assert KernelWorkspace(10, engine=engine).engine == engine

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            KernelWorkspace(10, engine="hash")

    def test_zero_vertices_allowed(self):
        ws = KernelWorkspace(0)
        assert ws._map.shape[0] >= 1

    def test_map_covers_vertex_domain(self):
        ws = KernelWorkspace(123)
        assert ws._map.shape == (123,)
        assert ws._map.dtype == np.int64


class TestAllocationAccounting:
    def test_allocation_recorded_in_ledger(self):
        rt = Runtime(num_threads=1, seed=0)
        before = rt.ledger.total_work
        KernelWorkspace(10_000, runtime=rt, phase="other")
        assert rt.ledger.total_work > before

    def test_allocation_cost_scales_with_vertices(self):
        costs = []
        for n in (1_000, 100_000):
            rt = Runtime(num_threads=1, seed=0)
            base = rt.ledger.total_work
            KernelWorkspace(n, runtime=rt)
            costs.append(rt.ledger.total_work - base)
        assert costs[1] > costs[0] * 50

    def test_no_runtime_no_accounting(self):
        # Just must not raise.
        KernelWorkspace(100)

    def test_memory_ledger_records_owned_map(self):
        from repro.observability.memtrack import MemoryLedger

        led = MemoryLedger()
        rt = Runtime(num_threads=1, seed=0, memory=led)
        ws = KernelWorkspace(10_000, runtime=rt, phase="local_move")
        assert led.live_bytes("workspace") == ws._map.nbytes
        assert led.phase_peak_bytes("local_move") == ws._map.nbytes
        assert ws._mem_handle >= 0

    def test_zero_slot_workspace_charges_one_slot(self):
        """The map is never empty (max(nv, 1) slots): the ledger event
        and the cost-model charge both cover exactly that one slot."""
        from repro.observability.memtrack import MemoryLedger

        led = MemoryLedger()
        rt = Runtime(num_threads=1, seed=0, memory=led)
        base = rt.ledger.total_work
        ws = KernelWorkspace(0, runtime=rt)
        assert ws._map.shape[0] == 1
        assert led.live_bytes("workspace") == 8  # one int64 slot
        assert led.to_snapshot()["logical"]["components"][
            "workspace"]["allocs"] == 1
        assert rt.ledger.total_work > base

    def test_worker_handed_map_charges_exactly_once(self):
        """An external scratch_map (the process engine's shm slab) was
        already recorded by its owner: the workspace must charge the
        cost model but NOT the memory ledger — double-charging would
        break the report's worker-count invariance."""
        from repro.observability.memtrack import MemoryLedger

        led = MemoryLedger()
        rt = Runtime(num_threads=1, seed=0, memory=led)
        slab = np.empty(100, dtype=np.int64)
        owner_handle = led.alloc("shm", "scratch_map", slab.nbytes,
                                 replicas=1)
        base = rt.ledger.total_work
        ws = KernelWorkspace(100, runtime=rt, scratch_map=slab)
        assert rt.ledger.total_work > base  # cost model still charged
        assert ws._mem_handle == -1
        assert led.live_bytes() == slab.nbytes  # only the owner's event
        snap = led.to_snapshot()
        assert "workspace" not in snap["logical"]["components"]
        led.free(owner_handle)
        assert led.live_bytes() == 0


class TestLedgerInvariance:
    """The logical memory report must not depend on hash seeding or on
    the worker count — the two classic sources of run-to-run drift."""

    @staticmethod
    def _logical_doc(workers: int, hashseed: str) -> dict:
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json\n"
            "from repro.core.config import LeidenConfig\n"
            "from repro.core.leiden import leiden\n"
            "from repro.datasets.registry import load_graph\n"
            "from repro.observability.memtrack import MemoryLedger, "
            "record_csr\n"
            "from repro.parallel.runtime import Runtime\n"
            "g = load_graph('asia_osm')\n"
            "led = MemoryLedger()\n"
            "record_csr(led, g)\n"
            f"with Runtime(num_threads={workers}, executor='process', "
            "seed=42, memory=led) as rt:\n"
            "    leiden(g, LeidenConfig(engine='process', seed=42), "
            "runtime=rt)\n"
            "print(json.dumps(led.to_snapshot()['logical'], "
            "sort_keys=True))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, text=True,
            capture_output=True, check=True, timeout=300)
        return json.loads(out.stdout.strip().splitlines()[-1])

    def test_logical_report_invariant_to_workers_and_hashseed(self):
        docs = [self._logical_doc(w, hs)
                for w in (1, 4) for hs in ("0", "1")]
        assert docs[0]["clock"] > 0
        assert all(d == docs[0] for d in docs[1:])


class TestDispatch:
    def _case(self, seed=0, size=200):
        rng = np.random.default_rng(seed)
        seg = np.sort(rng.integers(0, 12, size))
        comm = rng.integers(0, 30, size)
        w = rng.uniform(0, 2, size).astype(np.float32)
        return seg, comm, w

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_pair_sums_matches_sort_reference(self, engine):
        seg, comm, w = self._case()
        ws = KernelWorkspace(30, engine=engine)
        got = ws.pair_sums(seg, comm, w, 12)
        ref = segment_pair_sums_sort(seg, comm, w, 30)
        for g, r in zip(got, ref):
            assert np.array_equal(g, r)

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_argmax_matches_lexsort_reference(self, engine):
        rng = np.random.default_rng(3)
        seg = np.sort(rng.integers(0, 9, 120))
        vals = rng.integers(-2, 3, 120).astype(np.float64)
        ws = KernelWorkspace(20, engine=engine)
        gs, gi = ws.argmax(seg, vals)
        rs, ri = segmented_argmax(seg, vals)
        assert np.array_equal(gs, rs)
        assert np.array_equal(gi, ri)

    @pytest.mark.parametrize("engine", KERNEL_ENGINES)
    def test_scatter_add_matches_add_at(self, engine):
        rng = np.random.default_rng(7)
        target = rng.uniform(0, 1, 25)
        expected = target.copy()
        idx = rng.integers(0, 25, 80)
        w = rng.uniform(-1, 1, 80)
        np.add.at(expected, idx, w)
        KernelWorkspace(25, engine=engine).scatter_add(target, idx, w)
        assert np.allclose(target, expected)

    def test_scatter_add_identical_across_engines(self):
        """Both engines share the bincount scatter — bitwise equal."""
        rng = np.random.default_rng(13)
        idx = rng.integers(0, 40, 200)
        w = rng.uniform(-1, 1, 200).astype(np.float64)
        results = []
        for engine in KERNEL_ENGINES:
            target = np.zeros(40)
            KernelWorkspace(40, engine=engine).scatter_add(target, idx, w)
            results.append(target)
        assert results[0].tobytes() == results[1].tobytes()

    def test_workspace_reusable_across_batches(self):
        """One workspace, many calls — the per-pass reuse pattern."""
        ws = KernelWorkspace(50, engine="count")
        for seed in range(8):
            seg, comm, w = self._case(seed=seed, size=150)
            comm = comm % 50
            got = ws.pair_sums(seg, comm, w, 12)
            ref = segment_pair_sums_sort(seg, comm, w, 50)
            for g, r in zip(got, ref):
                assert np.array_equal(g, r)

    def test_compact(self):
        ws = KernelWorkspace(10)
        compact, uniques = ws.compact(np.array([9, 2, 9, 5]))
        assert uniques.tolist() == [2, 5, 9]
        assert compact.tolist() == [2, 0, 2, 1]
