"""Tests for the result types and their derived views."""

import numpy as np
import pytest

from repro.core.leiden import leiden
from repro.core.result import ALL_PHASES, PassStats
from repro.parallel.simthread import WorkLedger
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def result():
    return leiden(random_graph(n=120, avg_degree=7, seed=2))


class TestLeidenResult:
    def test_num_passes_matches(self, result):
        assert result.num_passes == len(result.passes)

    def test_num_communities_matches_membership(self, result):
        assert result.num_communities == \
            len(np.unique(result.membership))

    def test_phase_fractions_normalized(self, result):
        fr = result.phase_fractions_wall()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert set(fr) == set(ALL_PHASES)

    def test_pass_fractions_normalized(self, result):
        fr = result.pass_fractions_wall()
        assert len(fr) == result.num_passes
        assert sum(fr) == pytest.approx(1.0)

    def test_modeled_time_positive(self, result):
        from repro.parallel.costmodel import PAPER_MACHINE
        sim = result.modeled_time(PAPER_MACHINE, 4)
        assert sim.seconds > 0
        assert sim.num_threads == 4


class TestPassStats:
    def test_wall_seconds_sums_phases(self):
        ps = PassStats(
            index=0, num_vertices=10, num_communities=2,
            move_iterations=3, refine_moves=4, tolerance=0.01,
            wall_phase_seconds={"a": 1.0, "b": 2.0},
            ledger=WorkLedger(),
        )
        assert ps.wall_seconds == pytest.approx(3.0)

    def test_per_pass_ledgers_sum_to_total(self, result):
        per_pass = sum(ps.ledger.total_work for ps in result.passes)
        assert per_pass == pytest.approx(result.ledger.total_work)


class TestHierarchy:
    def test_levels_coarsen(self, result):
        levels = result.hierarchy()
        counts = [len(np.unique(l)) for l in levels]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_last_level_equals_membership(self, result):
        from repro.metrics.comparison import adjusted_rand_index
        last = result.membership_at_pass(-1)
        assert adjusted_rand_index(last, result.membership) == pytest.approx(1.0)

    def test_membership_at_pass_bounds(self, result):
        with pytest.raises(IndexError):
            result.membership_at_pass(result.dendrogram.num_levels)
        with pytest.raises(IndexError):
            result.membership_at_pass(-result.dendrogram.num_levels - 1)

    def test_each_level_nests_in_next(self, result):
        levels = result.hierarchy()
        for fine, coarse in zip(levels, levels[1:]):
            for comm in np.unique(fine):
                members = np.flatnonzero(fine == comm)
                assert len(np.unique(coarse[members])) == 1
