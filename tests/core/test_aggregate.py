"""Tests for the aggregation phase (both engines)."""

import numpy as np
import pytest

from repro.core.aggregate import (
    aggregate_batch,
    aggregate_loop,
    community_vertices_csr,
)
from repro.metrics.modularity import modularity
from repro.metrics.partition import renumber_membership
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph, two_cliques_graph


def aggregate(graph, membership, engine):
    C, ids = renumber_membership(membership)
    fn = aggregate_batch if engine == "batch" else aggregate_loop
    return fn(graph, C, len(ids), runtime=Runtime())


class TestCommunityVerticesCsr:
    def test_groups_members(self):
        C = np.array([1, 0, 1, 1], dtype=VERTEX_DTYPE)
        offsets, vertices = community_vertices_csr(C, 2)
        assert offsets.tolist() == [0, 1, 4]
        assert vertices[0] == 1
        assert sorted(vertices[1:4].tolist()) == [0, 2, 3]

    def test_empty_communities_get_empty_rows(self):
        C = np.array([0, 2], dtype=VERTEX_DTYPE)
        offsets, _ = community_vertices_csr(C, 3)
        assert offsets.tolist() == [0, 1, 1, 2]


@pytest.mark.parametrize("engine", ["batch", "loop"])
class TestAggregation:
    def test_two_cliques_collapse(self, engine):
        g = two_cliques_graph()
        C = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        sup = aggregate(g, C, engine)
        assert sup.num_vertices == 2
        # self-loops hold intra-clique weight (20 each, both directions);
        # one cross edge each way.
        src, dst, wgt = sup.to_coo()
        triples = {(int(u), int(v)): float(w)
                   for u, v, w in zip(src, dst, wgt)}
        assert triples[(0, 0)] == pytest.approx(20.0)
        assert triples[(1, 1)] == pytest.approx(20.0)
        assert triples[(0, 1)] == pytest.approx(1.0)
        assert triples[(1, 0)] == pytest.approx(1.0)

    def test_total_weight_preserved(self, engine):
        g = random_graph(n=60, avg_degree=6, seed=0, weighted=True)
        rng = np.random.default_rng(1)
        C = rng.integers(0, 7, g.num_vertices)
        sup = aggregate(g, C, engine)
        assert sup.total_weight == pytest.approx(g.total_weight, rel=1e-6)

    def test_vertex_weights_aggregate(self, engine):
        g = random_graph(n=40, avg_degree=5, seed=2, weighted=True)
        rng = np.random.default_rng(2)
        C = rng.integers(0, 5, g.num_vertices)
        Cren, ids = renumber_membership(C)
        sup = aggregate(g, C, engine)
        K = g.vertex_weights()
        expect = np.bincount(Cren, weights=K, minlength=len(ids))
        assert sup.vertex_weights() == pytest.approx(expect, rel=1e-6)

    def test_modularity_invariant_under_aggregation(self, engine):
        """Q of the partition equals Q of the super-graph's singletons."""
        g = random_graph(n=50, avg_degree=6, seed=3)
        rng = np.random.default_rng(3)
        C = rng.integers(0, 6, g.num_vertices)
        Cren, ids = renumber_membership(C)
        sup = aggregate(g, C, engine)
        q_partition = modularity(g, Cren)
        q_super = modularity(sup, np.arange(len(ids), dtype=VERTEX_DTYPE))
        assert q_super == pytest.approx(q_partition, abs=1e-6)

    def test_holey_csr_produced(self, engine):
        g = two_cliques_graph()
        C = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        sup = aggregate(g, C, engine)
        # capacity was overestimated by total community degree
        assert sup.offsets[-1] == g.num_edges
        assert sup.is_holey

    def test_identity_membership_roundtrip(self, engine):
        g = random_graph(n=20, avg_degree=4, seed=5, weighted=True)
        C = np.arange(g.num_vertices, dtype=VERTEX_DTYPE)
        sup = aggregate(g, C, engine)
        assert sup.compact() == g.compact()

    def test_singleton_graph(self, engine):
        from repro.graph.builder import build_csr_from_edges
        g = build_csr_from_edges([0], [1])
        C = np.zeros(2, dtype=VERTEX_DTYPE)
        sup = aggregate(g, C, engine)
        assert sup.num_vertices == 1
        src, dst, wgt = sup.to_coo()
        assert wgt.sum() == pytest.approx(2.0)  # both directions folded


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_graph(self, seed):
        g = random_graph(n=50, avg_degree=7, seed=seed, weighted=True)
        rng = np.random.default_rng(seed)
        C = rng.integers(0, 8, g.num_vertices)
        a = aggregate(g, C, "batch")
        b = aggregate(g, C, "loop")
        assert a.num_vertices == b.num_vertices
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.degrees, b.degrees)
        assert a == b
