"""Tests for GVE-Louvain (Leiden minus refinement)."""

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.louvain import louvain
from repro.datasets.sbm import planted_partition
from repro.metrics.comparison import adjusted_rand_index
from repro.metrics.modularity import modularity
from tests.conftest import random_graph, two_cliques_graph


class TestLouvain:
    def test_two_cliques(self):
        g = two_cliques_graph()
        res = louvain(g)
        assert res.num_communities == 2

    def test_no_refinement_work_recorded(self):
        g = random_graph(n=80, avg_degree=6, seed=1)
        res = louvain(g)
        assert res.ledger.work_by_phase().get("refine", 0.0) == 0.0
        for ps in res.passes:
            assert ps.refine_moves == 0

    def test_recovers_planted(self):
        g, planted = planted_partition(6, 40, intra_degree=12,
                                       inter_degree=2, seed=1)
        res = louvain(g)
        assert adjusted_rand_index(res.membership, planted) > 0.9

    def test_quality_comparable_to_leiden(self):
        g = random_graph(n=150, avg_degree=8, seed=4)
        ql = modularity(g, louvain(g).membership)
        qd = modularity(g, leiden(g).membership)
        assert abs(ql - qd) < 0.05

    def test_respects_config(self):
        g = two_cliques_graph()
        res = louvain(g, LeidenConfig(max_passes=1))
        assert res.num_passes == 1

    def test_use_refinement_override_is_forced(self):
        g = two_cliques_graph()
        res = louvain(g, LeidenConfig(use_refinement=True))
        assert all(ps.refine_moves == 0 for ps in res.passes)
