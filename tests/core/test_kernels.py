"""Tests for the segmented batch kernels."""

import numpy as np
import pytest

from repro.core._kernels import (
    compact_keys,
    scatter_add,
    segment_pair_sums,
    segment_pair_sums_count,
    segment_pair_sums_sort,
    segmented_argmax,
    segmented_argmax_sorted,
)


class TestSegmentPairSums:
    def test_basic(self):
        seg = np.array([0, 0, 0, 1])
        comm = np.array([2, 2, 3, 2])
        w = np.array([1.0, 2.0, 4.0, 8.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, 5)
        assert ps.tolist() == [0, 0, 1]
        assert pc.tolist() == [2, 3, 2]
        assert psum.tolist() == [3.0, 4.0, 8.0]

    def test_sorted_by_segment_then_community(self):
        rng = np.random.default_rng(0)
        seg = rng.integers(0, 8, 100)
        comm = rng.integers(0, 10, 100)
        w = rng.uniform(0, 1, 100)
        ps, pc, _ = segment_pair_sums(seg, comm, w, 10)
        keys = ps * 10 + pc
        assert np.all(np.diff(keys) > 0)  # strictly increasing = unique

    def test_matches_dict_oracle(self):
        rng = np.random.default_rng(7)
        seg = rng.integers(0, 20, 500)
        comm = rng.integers(0, 30, 500)
        w = rng.uniform(0, 2, 500)
        ps, pc, psum = segment_pair_sums(seg, comm, w, 30)
        oracle = {}
        for s, c, x in zip(seg.tolist(), comm.tolist(), w.tolist()):
            oracle[(s, c)] = oracle.get((s, c), 0.0) + x
        got = {(int(s), int(c)): float(v) for s, c, v in zip(ps, pc, psum)}
        assert got == pytest.approx(oracle)

    def test_empty(self):
        ps, pc, psum = segment_pair_sums(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0), 5,
        )
        assert ps.shape == (0,)
        assert pc.shape == (0,)
        assert psum.shape == (0,)

    def test_single_segment(self):
        """A batch where every edge belongs to one vertex."""
        seg = np.zeros(6, dtype=np.int64)
        comm = np.array([4, 1, 4, 1, 4, 0])
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, 5)
        assert ps.tolist() == [0, 0, 0]
        assert pc.tolist() == [0, 1, 4]
        assert psum.tolist() == [6.0, 6.0, 9.0]

    def test_community_id_at_upper_boundary(self):
        """ids == num_communities - 1 must not collide across segments.

        The kernel packs (seg, comm) into seg * k + comm; the largest
        community id of segment s must stay distinct from community 0 of
        segment s + 1.
        """
        k = 7
        seg = np.array([0, 1, 1, 2])
        comm = np.array([k - 1, 0, k - 1, 0])
        w = np.array([1.0, 2.0, 4.0, 8.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, k)
        got = {(int(s), int(c)): float(v) for s, c, v in zip(ps, pc, psum)}
        assert got == {(0, k - 1): 1.0, (1, 0): 2.0, (1, k - 1): 4.0, (2, 0): 8.0}

    def test_single_pair_many_duplicates(self):
        seg = np.zeros(100, dtype=np.int64)
        comm = np.full(100, 3, dtype=np.int64)
        w = np.ones(100)
        ps, pc, psum = segment_pair_sums(seg, comm, w, 4)
        assert ps.tolist() == [0]
        assert pc.tolist() == [3]
        assert psum.tolist() == [100.0]


class TestSegmentedArgmax:
    def test_basic(self):
        seg = np.array([0, 0, 1, 1, 1])
        vals = np.array([1.0, 3.0, 2.0, 5.0, 4.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert idx.tolist() == [1, 3]

    def test_single_item_segments(self):
        seg = np.array([3, 7])
        vals = np.array([1.0, 2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [3, 7]
        assert idx.tolist() == [0, 1]

    def test_unsorted_segments(self):
        seg = np.array([1, 0, 1, 0])
        vals = np.array([5.0, 1.0, 3.0, 2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert vals[idx].tolist() == [2.0, 5.0]

    def test_matches_oracle(self):
        rng = np.random.default_rng(3)
        seg = rng.integers(0, 15, 300)
        vals = rng.uniform(-1, 1, 300)
        segs, idx = segmented_argmax(seg, vals)
        for s, k in zip(segs.tolist(), idx.tolist()):
            mask = seg == s
            assert vals[k] == pytest.approx(vals[mask].max())

    def test_empty(self):
        segs, idx = segmented_argmax(np.empty(0, dtype=np.int64), np.empty(0))
        assert segs.shape == (0,)

    def test_negative_values_still_selected(self):
        seg = np.array([0, 0])
        vals = np.array([-5.0, -2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert vals[idx].tolist() == [-2.0]

    def test_single_segment_whole_input(self):
        seg = np.zeros(5, dtype=np.int64)
        vals = np.array([0.5, 3.0, 2.0, 3.0, 1.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0]
        assert vals[int(idx[0])] == 3.0

    def test_tie_breaks_toward_last_among_equals(self):
        """All-equal values: the documented winner is the last entry."""
        seg = np.array([0, 0, 0])
        vals = np.array([1.0, 1.0, 1.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0]
        assert idx.tolist() == [2]

    def test_tie_break_is_stable_per_segment(self):
        """Ties resolve to the last-sorted equal entry in every segment."""
        seg = np.array([0, 0, 1, 1, 1])
        vals = np.array([7.0, 7.0, 2.0, 9.0, 9.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert idx.tolist() == [1, 4]

    def test_tie_break_independent_of_input_order(self):
        """Lexsort is stable, so equal values keep input order within a
        segment even when segments arrive interleaved."""
        seg = np.array([1, 0, 1, 0])
        vals = np.array([4.0, 6.0, 4.0, 6.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        # last among equals in *input* order: positions 3 (seg 0), 2 (seg 1)
        assert idx.tolist() == [3, 2]


class TestCompactKeys:
    def test_round_trip(self):
        keys = np.array([7, 3, 7, 0, 3, 9])
        compact, uniques = compact_keys(keys, domain=10)
        assert uniques.tolist() == [0, 3, 7, 9]
        assert np.array_equal(uniques[compact], keys)

    def test_preserves_ascending_order(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 50, 400)
        compact, uniques = compact_keys(keys, domain=50)
        assert np.all(np.diff(uniques) > 0)
        assert np.array_equal(uniques[compact], keys)

    def test_empty(self):
        compact, uniques = compact_keys(np.empty(0, dtype=np.int64))
        assert compact.shape == (0,)
        assert uniques.shape == (0,)

    def test_scratch_map_reusable_without_clearing(self):
        scratch = np.empty(20, dtype=np.int64)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            keys = rng.integers(0, 20, 60)
            compact, uniques = compact_keys(keys, scratch)
            assert np.array_equal(uniques[compact], keys)


class TestScatterAdd:
    def test_matches_add_at(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            target = rng.uniform(0, 1, 30)
            expected = target.copy()
            idx = rng.integers(0, 30, 100)
            w = rng.uniform(-1, 1, 100)
            np.add.at(expected, idx, w)
            scatter_add(target, idx, w)
            assert np.allclose(target, expected)

    def test_untouched_slots_bitwise_unchanged(self):
        target = np.array([0.1, 0.2, 0.3, 0.4])
        before = target.copy()
        scatter_add(target, np.array([1]), np.array([5.0]))
        assert target[0] == before[0]
        assert target[2] == before[2]
        assert target[3] == before[3]
        assert target[1] == before[1] + 5.0

    def test_empty_noop(self):
        target = np.ones(4)
        scatter_add(target, np.empty(0, dtype=np.int64), np.empty(0))
        assert target.tolist() == [1.0, 1.0, 1.0, 1.0]


def _random_pair_case(rng, *, num_segments=None, num_communities=None,
                      size=None, self_heavy=False):
    n_seg = num_segments or int(rng.integers(1, 25))
    n_comm = num_communities or int(rng.integers(1, 40))
    sz = size if size is not None else int(rng.integers(0, 300))
    seg = np.sort(rng.integers(0, n_seg, sz))
    comm = rng.integers(0, n_comm, sz)
    if self_heavy and sz:
        # many repeats of one community: the self-loop-heavy shape
        comm[rng.random(sz) < 0.7] = int(rng.integers(0, n_comm))
    w = rng.uniform(-2, 2, sz).astype(np.float32)
    return seg, comm, w, n_seg, n_comm


class TestCountSortEquivalence:
    """The counting kernels are *element-exact* equivalents of the sort
    kernels: same pairs, same order, bitwise-identical sums."""

    def test_fuzz_pair_sums(self):
        rng = np.random.default_rng(2024)
        for trial in range(60):
            seg, comm, w, n_seg, n_comm = _random_pair_case(rng)
            a = segment_pair_sums_sort(seg, comm, w, n_comm)
            b = segment_pair_sums_count(
                seg, comm, w, n_seg, num_communities=n_comm
            )
            for x, y in zip(a, b):
                assert np.array_equal(x, y), trial
            # bitwise, not approx
            assert a[2].tobytes() == b[2].tobytes()

    def test_fuzz_pair_sums_fallback_path(self):
        """dense_grid_limit=0 forces the compacted-argsort fallback."""
        rng = np.random.default_rng(77)
        for trial in range(40):
            seg, comm, w, n_seg, n_comm = _random_pair_case(rng)
            a = segment_pair_sums_sort(seg, comm, w, n_comm)
            b = segment_pair_sums_count(
                seg, comm, w, n_seg, num_communities=n_comm,
                dense_grid_limit=0,
            )
            for x, y in zip(a, b):
                assert np.array_equal(x, y), trial
            assert a[2].tobytes() == b[2].tobytes()

    def test_single_community(self):
        seg = np.array([0, 0, 1, 2, 2])
        comm = np.zeros(5, dtype=np.int64)
        w = np.array([0.1, 0.2, 0.3, 0.4, 0.5], dtype=np.float32)
        a = segment_pair_sums_sort(seg, comm, w, 1)
        b = segment_pair_sums_count(seg, comm, w, 3, num_communities=1)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_empty_batch(self):
        e = np.empty(0, dtype=np.int64)
        b = segment_pair_sums_count(e, e, np.empty(0), 4, num_communities=9)
        assert all(arr.shape == (0,) for arr in b)

    def test_zero_weight_pairs_survive(self):
        """Weights summing to exactly 0 must not drop the pair."""
        seg = np.array([0, 0, 1])
        comm = np.array([3, 3, 5])
        w = np.array([1.5, -1.5, 0.0])
        a = segment_pair_sums_sort(seg, comm, w, 6)
        b = segment_pair_sums_count(seg, comm, w, 2, num_communities=6)
        assert a[0].tolist() == b[0].tolist() == [0, 1]
        assert a[2].tolist() == b[2].tolist() == [0.0, 0.0]

    def test_unsorted_segments_supported_by_count(self):
        """Aggregation passes unsorted seg; output is still pair-sorted."""
        rng = np.random.default_rng(8)
        seg = rng.integers(0, 10, 200)  # NOT sorted
        comm = rng.integers(0, 12, 200)
        w = rng.uniform(0, 1, 200).astype(np.float32)
        b = segment_pair_sums_count(seg, comm, w, 10, num_communities=12)
        keys = b[0] * 12 + b[1]
        assert np.all(np.diff(keys) > 0)
        oracle = {}
        for s, c, x in zip(seg.tolist(), comm.tolist(), w.tolist()):
            oracle[(s, c)] = oracle.get((s, c), 0.0) + x
        got = {(int(s), int(c)): float(v) for s, c, v in zip(*b)}
        assert got == pytest.approx(oracle)

    def test_fuzz_argmax_sorted(self):
        rng = np.random.default_rng(31)
        for trial in range(60):
            sz = int(rng.integers(0, 200))
            seg = np.sort(rng.integers(0, 20, sz))
            # duplicate values force the tie-break to matter
            vals = rng.integers(-3, 4, sz).astype(np.float64)
            a = segmented_argmax(seg, vals)
            b = segmented_argmax_sorted(seg, vals)
            assert np.array_equal(a[0], b[0]), trial
            assert np.array_equal(a[1], b[1]), trial

    def test_argmax_sorted_tie_break_last(self):
        seg = np.array([0, 0, 0, 2, 2])
        vals = np.array([1.0, 1.0, 1.0, 5.0, 5.0])
        segs, idx = segmented_argmax_sorted(seg, vals)
        assert segs.tolist() == [0, 2]
        assert idx.tolist() == [2, 4]

    def test_self_loop_heavy(self):
        rng = np.random.default_rng(99)
        for trial in range(20):
            seg, comm, w, n_seg, n_comm = _random_pair_case(
                rng, self_heavy=True
            )
            a = segment_pair_sums_sort(seg, comm, w, n_comm)
            b = segment_pair_sums_count(
                seg, comm, w, n_seg, num_communities=n_comm
            )
            for x, y in zip(a, b):
                assert np.array_equal(x, y), trial
