"""Tests for the segmented batch kernels."""

import numpy as np
import pytest

from repro.core._kernels import segment_pair_sums, segmented_argmax


class TestSegmentPairSums:
    def test_basic(self):
        seg = np.array([0, 0, 0, 1])
        comm = np.array([2, 2, 3, 2])
        w = np.array([1.0, 2.0, 4.0, 8.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, 5)
        assert ps.tolist() == [0, 0, 1]
        assert pc.tolist() == [2, 3, 2]
        assert psum.tolist() == [3.0, 4.0, 8.0]

    def test_sorted_by_segment_then_community(self):
        rng = np.random.default_rng(0)
        seg = rng.integers(0, 8, 100)
        comm = rng.integers(0, 10, 100)
        w = rng.uniform(0, 1, 100)
        ps, pc, _ = segment_pair_sums(seg, comm, w, 10)
        keys = ps * 10 + pc
        assert np.all(np.diff(keys) > 0)  # strictly increasing = unique

    def test_matches_dict_oracle(self):
        rng = np.random.default_rng(7)
        seg = rng.integers(0, 20, 500)
        comm = rng.integers(0, 30, 500)
        w = rng.uniform(0, 2, 500)
        ps, pc, psum = segment_pair_sums(seg, comm, w, 30)
        oracle = {}
        for s, c, x in zip(seg.tolist(), comm.tolist(), w.tolist()):
            oracle[(s, c)] = oracle.get((s, c), 0.0) + x
        got = {(int(s), int(c)): float(v) for s, c, v in zip(ps, pc, psum)}
        assert got == pytest.approx(oracle)

    def test_empty(self):
        ps, pc, psum = segment_pair_sums(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0), 5,
        )
        assert ps.shape == (0,)
        assert pc.shape == (0,)
        assert psum.shape == (0,)

    def test_single_segment(self):
        """A batch where every edge belongs to one vertex."""
        seg = np.zeros(6, dtype=np.int64)
        comm = np.array([4, 1, 4, 1, 4, 0])
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, 5)
        assert ps.tolist() == [0, 0, 0]
        assert pc.tolist() == [0, 1, 4]
        assert psum.tolist() == [6.0, 6.0, 9.0]

    def test_community_id_at_upper_boundary(self):
        """ids == num_communities - 1 must not collide across segments.

        The kernel packs (seg, comm) into seg * k + comm; the largest
        community id of segment s must stay distinct from community 0 of
        segment s + 1.
        """
        k = 7
        seg = np.array([0, 1, 1, 2])
        comm = np.array([k - 1, 0, k - 1, 0])
        w = np.array([1.0, 2.0, 4.0, 8.0])
        ps, pc, psum = segment_pair_sums(seg, comm, w, k)
        got = {(int(s), int(c)): float(v) for s, c, v in zip(ps, pc, psum)}
        assert got == {(0, k - 1): 1.0, (1, 0): 2.0, (1, k - 1): 4.0, (2, 0): 8.0}

    def test_single_pair_many_duplicates(self):
        seg = np.zeros(100, dtype=np.int64)
        comm = np.full(100, 3, dtype=np.int64)
        w = np.ones(100)
        ps, pc, psum = segment_pair_sums(seg, comm, w, 4)
        assert ps.tolist() == [0]
        assert pc.tolist() == [3]
        assert psum.tolist() == [100.0]


class TestSegmentedArgmax:
    def test_basic(self):
        seg = np.array([0, 0, 1, 1, 1])
        vals = np.array([1.0, 3.0, 2.0, 5.0, 4.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert idx.tolist() == [1, 3]

    def test_single_item_segments(self):
        seg = np.array([3, 7])
        vals = np.array([1.0, 2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [3, 7]
        assert idx.tolist() == [0, 1]

    def test_unsorted_segments(self):
        seg = np.array([1, 0, 1, 0])
        vals = np.array([5.0, 1.0, 3.0, 2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert vals[idx].tolist() == [2.0, 5.0]

    def test_matches_oracle(self):
        rng = np.random.default_rng(3)
        seg = rng.integers(0, 15, 300)
        vals = rng.uniform(-1, 1, 300)
        segs, idx = segmented_argmax(seg, vals)
        for s, k in zip(segs.tolist(), idx.tolist()):
            mask = seg == s
            assert vals[k] == pytest.approx(vals[mask].max())

    def test_empty(self):
        segs, idx = segmented_argmax(np.empty(0, dtype=np.int64), np.empty(0))
        assert segs.shape == (0,)

    def test_negative_values_still_selected(self):
        seg = np.array([0, 0])
        vals = np.array([-5.0, -2.0])
        segs, idx = segmented_argmax(seg, vals)
        assert vals[idx].tolist() == [-2.0]

    def test_single_segment_whole_input(self):
        seg = np.zeros(5, dtype=np.int64)
        vals = np.array([0.5, 3.0, 2.0, 3.0, 1.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0]
        assert vals[int(idx[0])] == 3.0

    def test_tie_breaks_toward_last_among_equals(self):
        """All-equal values: the documented winner is the last entry."""
        seg = np.array([0, 0, 0])
        vals = np.array([1.0, 1.0, 1.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0]
        assert idx.tolist() == [2]

    def test_tie_break_is_stable_per_segment(self):
        """Ties resolve to the last-sorted equal entry in every segment."""
        seg = np.array([0, 0, 1, 1, 1])
        vals = np.array([7.0, 7.0, 2.0, 9.0, 9.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        assert idx.tolist() == [1, 4]

    def test_tie_break_independent_of_input_order(self):
        """Lexsort is stable, so equal values keep input order within a
        segment even when segments arrive interleaved."""
        seg = np.array([1, 0, 1, 0])
        vals = np.array([4.0, 6.0, 4.0, 6.0])
        segs, idx = segmented_argmax(seg, vals)
        assert segs.tolist() == [0, 1]
        # last among equals in *input* order: positions 3 (seg 0), 2 (seg 1)
        assert idx.tolist() == [3, 2]
