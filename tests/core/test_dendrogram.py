"""Tests for the dendrogram type."""

import numpy as np
import pytest

from repro.core.dendrogram import Dendrogram
from repro.errors import GraphStructureError


class TestAddLevel:
    def test_basic(self):
        d = Dendrogram()
        d.add_level([0, 0, 1, 1])
        assert d.num_levels == 1
        assert d.num_communities(0) == 2

    def test_size_chain_enforced(self):
        d = Dendrogram()
        d.add_level([0, 0, 1, 1])
        with pytest.raises(GraphStructureError):
            d.add_level([0, 0, 0])  # previous level has 2 communities

    def test_surjectivity_enforced(self):
        d = Dendrogram()
        with pytest.raises(GraphStructureError):
            d.add_level([0, 2])  # skips community 1

    def test_negative_rejected(self):
        with pytest.raises(GraphStructureError):
            Dendrogram().add_level([-1, 0])

    def test_2d_rejected(self):
        with pytest.raises(GraphStructureError):
            Dendrogram().add_level(np.zeros((2, 2), dtype=np.int32))


class TestFlatten:
    def test_single_level(self):
        d = Dendrogram()
        d.add_level([0, 1, 0])
        assert d.flatten().tolist() == [0, 1, 0]

    def test_composition(self):
        d = Dendrogram()
        d.add_level([0, 0, 1, 1, 2, 2])  # 6 -> 3
        d.add_level([0, 0, 1])           # 3 -> 2
        assert d.flatten().tolist() == [0, 0, 0, 0, 1, 1]

    def test_upto(self):
        d = Dendrogram()
        d.add_level([0, 0, 1, 1])
        d.add_level([0, 0])
        assert d.flatten(upto=1).tolist() == [0, 0, 1, 1]
        assert d.flatten(upto=2).tolist() == [0, 0, 0, 0]

    def test_memberships_list(self):
        d = Dendrogram()
        d.add_level([0, 1, 1])
        d.add_level([0, 0])
        levels = d.memberships()
        assert levels[0].tolist() == [0, 1, 1]
        assert levels[1].tolist() == [0, 0, 0]

    def test_empty_raises(self):
        with pytest.raises(GraphStructureError):
            Dendrogram().flatten()

    def test_iter_and_len(self):
        d = Dendrogram()
        d.add_level([0, 0])
        assert len(d) == 1
        assert [lvl.tolist() for lvl in d] == [[0, 0]]
