"""Tests for the quality-function abstraction (modularity + CPM)."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.quality import Quality, cpm_quality
from repro.errors import ConfigError
from repro.metrics.modularity import delta_modularity, modularity
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph, ring_of_cliques_graph, two_cliques_graph


class TestQualityObject:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            Quality("conductance")

    def test_rejects_bad_resolution(self):
        with pytest.raises(ConfigError):
            Quality("cpm", 0.0)

    def test_vertex_quantity_selection(self):
        K = np.array([2.0, 3.0])
        s = np.array([1.0, 5.0])
        assert Quality("modularity").vertex_quantity(K, s) is K
        assert Quality("cpm").vertex_quantity(K, s).tolist() == [1.0, 5.0]

    def test_modularity_delta_matches_metric(self):
        q = Quality("modularity", 1.0)
        got = q.delta(3.0, 1.0, 2.0, 2.0, 5.0, 4.0, 10.0)
        expect = delta_modularity(3.0, 1.0, 2.0, 5.0, 4.0, 10.0)
        assert float(got) == pytest.approx(float(expect))


class TestCpmDeltaConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_delta_matches_brute_force(self, seed):
        g = random_graph(n=25, avg_degree=5, seed=seed)
        rng = np.random.default_rng(seed)
        gamma = 0.05
        q = Quality("cpm", gamma)
        C = rng.integers(0, 4, g.num_vertices).astype(VERTEX_DTYPE)
        sizes = np.ones(g.num_vertices)
        S = np.bincount(C, weights=sizes, minlength=4)
        m = g.m
        for _ in range(12):
            i = int(rng.integers(0, g.num_vertices))
            c = int(rng.integers(0, 4))
            d = int(C[i])
            if c == d:
                continue
            dst, wgt = g.edges(i)
            notself = dst != i
            kic = float(wgt[notself][C[dst[notself]] == c].sum(dtype=np.float64))
            kid = float(wgt[notself][C[dst[notself]] == d].sum(dtype=np.float64))
            dq = float(q.delta(kic, kid, 0.0, 1.0, S[c], S[d], m))
            before = cpm_quality(g, C, resolution=gamma)
            C2 = C.copy()
            C2[i] = c
            after = cpm_quality(g, C2, resolution=gamma)
            assert dq == pytest.approx(after - before, abs=1e-9)


class TestCpmLeiden:
    def test_finds_cliques(self):
        g = two_cliques_graph()
        res = leiden(g, LeidenConfig(quality="cpm", resolution=0.3))
        assert res.num_communities == 2

    def test_no_resolution_limit(self):
        """CPM's selling point: on a ring of many small cliques, CPM at a
        suitable γ keeps the cliques separate even when there are many of
        them (where modularity would start merging neighbouring cliques)."""
        g = ring_of_cliques_graph(12, 4)
        res = leiden(g, LeidenConfig(quality="cpm", resolution=0.5))
        assert res.num_communities == 12

    def test_gamma_controls_granularity(self):
        g = random_graph(n=120, avg_degree=8, seed=4)
        fine = leiden(g, LeidenConfig(quality="cpm", resolution=0.5))
        coarse = leiden(g, LeidenConfig(quality="cpm", resolution=0.02))
        assert fine.num_communities >= coarse.num_communities

    def test_high_gamma_gives_singletons(self):
        g = random_graph(n=50, avg_degree=4, seed=2)
        res = leiden(g, LeidenConfig(quality="cpm", resolution=100.0))
        assert res.num_communities == g.num_vertices

    def test_improves_cpm_objective(self):
        g = random_graph(n=100, avg_degree=8, seed=6)
        gamma = 0.05
        res = leiden(g, LeidenConfig(quality="cpm", resolution=gamma))
        singles = np.arange(g.num_vertices, dtype=VERTEX_DTYPE)
        assert cpm_quality(g, res.membership, resolution=gamma) > \
            cpm_quality(g, singles, resolution=gamma)

    def test_no_disconnected_communities(self):
        g = random_graph(n=150, avg_degree=5, seed=8)
        from repro.metrics.connectivity import disconnected_communities
        res = leiden(g, LeidenConfig(quality="cpm", resolution=0.05))
        assert disconnected_communities(g, res.membership).num_disconnected == 0

    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_both_engines(self, engine):
        g = two_cliques_graph()
        res = leiden(g, LeidenConfig(quality="cpm", resolution=0.3,
                                     engine=engine))
        assert res.num_communities == 2

    def test_config_rejects_unknown_quality(self):
        with pytest.raises(ConfigError):
            LeidenConfig(quality="surprise")


class TestCpmQualityMetric:
    def test_single_community_value(self):
        g = two_cliques_graph()
        C = np.zeros(10, dtype=VERTEX_DTYPE)
        # e = 21 edges, penalty = γ·45, m = 21
        gamma = 0.1
        expect = (21 - gamma * 45) / 21.0
        assert cpm_quality(g, C, resolution=gamma) == pytest.approx(expect)

    def test_singletons_value_zero_penalty(self):
        g = two_cliques_graph()
        C = np.arange(10, dtype=VERTEX_DTYPE)
        assert cpm_quality(g, C, resolution=1.0) == pytest.approx(0.0)

    def test_node_sizes_respected(self):
        g = two_cliques_graph()
        C = np.zeros(10, dtype=VERTEX_DTYPE)
        small = cpm_quality(g, C, resolution=0.1)
        big = cpm_quality(g, C, resolution=0.1,
                          node_sizes=np.full(10, 2.0))
        assert big < small  # larger sizes, larger penalty

    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        assert cpm_quality(empty_csr(0), np.empty(0, dtype=VERTEX_DTYPE)) == 0.0
