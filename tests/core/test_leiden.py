"""End-to-end tests for the Leiden driver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import ALL_PHASES
from repro.datasets.sbm import planted_partition
from repro.metrics.comparison import adjusted_rand_index
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import (
    path_graph,
    random_graph,
    ring_of_cliques_graph,
    two_cliques_graph,
)


class TestBasicCorrectness:
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    @pytest.mark.parametrize("refinement", ["greedy", "random"])
    def test_two_cliques(self, engine, refinement):
        g = two_cliques_graph()
        res = leiden(g, LeidenConfig(engine=engine, refinement=refinement))
        C = res.membership
        assert len(np.unique(C)) == 2
        assert len(np.unique(C[:5])) == 1
        assert len(np.unique(C[5:])) == 1

    def test_ring_of_cliques(self):
        g = ring_of_cliques_graph(6, 5)
        res = leiden(g)
        assert res.num_communities == 6

    def test_membership_compact_ids(self):
        g = random_graph(n=80, avg_degree=6, seed=1)
        res = leiden(g)
        C = res.membership
        assert C.min() == 0
        assert len(np.unique(C)) == C.max() + 1

    def test_recovers_planted_partition(self):
        g, planted = planted_partition(8, 30, intra_degree=12,
                                       inter_degree=2, seed=3)
        res = leiden(g)
        assert adjusted_rand_index(res.membership, planted) > 0.95

    def test_no_disconnected_communities(self):
        for seed in range(3):
            g = random_graph(n=150, avg_degree=5, seed=seed)
            res = leiden(g, LeidenConfig(seed=seed))
            report = disconnected_communities(g, res.membership)
            assert report.num_disconnected == 0, f"seed {seed}"

    def test_beats_singletons_and_single_community(self):
        g = random_graph(n=100, avg_degree=8, seed=7)
        res = leiden(g)
        q = modularity(g, res.membership)
        assert q > modularity(g, np.zeros(g.num_vertices, dtype=np.int32))
        assert q > modularity(g, np.arange(g.num_vertices, dtype=np.int32))

    def test_deterministic_given_seed(self):
        g = random_graph(n=80, avg_degree=6, seed=2)
        a = leiden(g, LeidenConfig(seed=11))
        b = leiden(g, LeidenConfig(seed=11))
        assert np.array_equal(a.membership, b.membership)

    def test_path_graph_contiguous_communities(self):
        g = path_graph(40)
        res = leiden(g)
        C = res.membership
        # communities on a path must be contiguous runs
        changes = np.flatnonzero(C[1:] != C[:-1])
        assert len(np.unique(C)) == changes.shape[0] + 1


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        res = leiden(empty_csr(0))
        assert res.membership.shape == (0,)

    def test_edgeless_vertices(self):
        from repro.graph.csr import empty_csr
        res = leiden(empty_csr(5))
        assert res.membership.shape == (5,)
        assert res.num_communities == 5

    def test_single_edge(self):
        from repro.graph.builder import build_csr_from_edges
        g = build_csr_from_edges([0], [1])
        res = leiden(g)
        assert res.num_communities == 1

    def test_self_loop_only(self):
        from repro.graph.builder import build_csr_from_edges
        g = build_csr_from_edges([0], [0])
        res = leiden(g)
        assert res.num_communities == 1

    def test_max_passes_respected(self):
        g = random_graph(n=100, avg_degree=4, seed=5)
        res = leiden(g, LeidenConfig(max_passes=1))
        assert res.num_passes == 1


class TestVariantsAndLabels:
    def test_refine_based_labels_finer_or_equal(self):
        g = random_graph(n=120, avg_degree=6, seed=9)
        move = leiden(g, LeidenConfig(vertex_label="move"))
        refine = leiden(g, LeidenConfig(vertex_label="refine"))
        assert refine.num_communities >= move.num_communities

    def test_refine_labels_nested_in_move_labels(self):
        g = random_graph(n=100, avg_degree=6, seed=10)
        refine = leiden(g, LeidenConfig(vertex_label="refine", max_passes=1))
        move = leiden(g, LeidenConfig(vertex_label="move", max_passes=1))
        # every refined community sits inside one move community
        for comm in np.unique(refine.membership):
            members = np.flatnonzero(refine.membership == comm)
            assert len(np.unique(move.membership[members])) == 1

    @pytest.mark.parametrize("variant", ["default", "medium", "heavy"])
    def test_variants_all_work(self, variant):
        g = two_cliques_graph()
        res = leiden(g, LeidenConfig.variant(variant))
        assert res.num_communities == 2

    def test_resolution_controls_granularity(self):
        g = ring_of_cliques_graph(6, 5)
        fine = leiden(g, LeidenConfig(resolution=2.0))
        coarse = leiden(g, LeidenConfig(resolution=0.2))
        assert fine.num_communities >= coarse.num_communities


class TestResultStructure:
    def test_pass_stats_populated(self):
        g = random_graph(n=100, avg_degree=6, seed=4)
        res = leiden(g)
        assert res.num_passes == len(res.passes)
        assert res.passes[0].num_vertices == g.num_vertices
        for ps in res.passes:
            assert ps.move_iterations >= 1
            assert ps.ledger.total_work > 0

    def test_vertex_counts_shrink(self):
        g = random_graph(n=150, avg_degree=6, seed=6)
        res = leiden(g)
        counts = [ps.num_vertices for ps in res.passes]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_dendrogram_flattens_to_membership(self):
        g = random_graph(n=100, avg_degree=6, seed=8)
        res = leiden(g)
        flat = res.dendrogram.flatten()
        # same partition up to renumbering
        assert adjusted_rand_index(flat, res.membership) == pytest.approx(1.0)

    def test_phase_wall_times_recorded(self):
        g = random_graph(n=80, avg_degree=6, seed=3)
        res = leiden(g)
        assert set(res.wall_phase_seconds) == set(ALL_PHASES)
        assert res.wall_seconds > 0
        fr = res.phase_fractions_wall()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_ledger_contains_all_phases(self):
        g = random_graph(n=150, avg_degree=6, seed=2)
        res = leiden(g)
        assert set(res.ledger.phases()) == set(ALL_PHASES)

    def test_modeled_time_decreases_with_threads(self):
        # At paper scale (work_scale) the chunk granularity of the small
        # test graph no longer limits parallelism.
        from repro.parallel.costmodel import PAPER_MACHINE
        g = random_graph(n=200, avg_degree=8, seed=1)
        res = leiden(g)
        t1 = res.ledger.simulate(PAPER_MACHINE, 1, work_scale=1000).seconds
        t8 = res.ledger.simulate(PAPER_MACHINE, 8, work_scale=1000).seconds
        assert t8 < t1


class TestInputValidation:
    def test_validate_input_accepts_symmetric(self):
        g = two_cliques_graph()
        res = leiden(g, validate_input=True)
        assert res.num_communities == 2

    def test_validate_input_rejects_directed(self):
        from repro.errors import GraphStructureError
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_coo([0, 1], [1, 2], num_vertices=3)
        with pytest.raises(GraphStructureError):
            leiden(g, validate_input=True)

    def test_default_skips_validation(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_coo([0, 1], [1, 2], num_vertices=3)
        res = leiden(g)  # silently tolerated, as the paper's code would
        assert res.membership.shape == (3,)
