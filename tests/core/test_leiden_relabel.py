"""Relabel-oracle tests: the ``config.relabel`` solve pipeline.

The asynchronous engines are *not* permutation-equivariant (coloring
priorities and argmax tie-breaks are id-dependent), so the gate is not
"same partition as a relabel='none' run".  The invariants that hold
exactly — and are gated here on registry graphs per engine — are:

- the result's permutation is a bijection and the relabeled graph
  round-trips bitwise through the inverse;
- quality is exactly layout-invariant: the mapped-back membership
  scores bit-identically on the original graph to the relabeled solve
  on its own layout;
- the mapped-back membership is a valid compact partition consistent
  with the mapped-back dendrogram;
- the whole pipeline is deterministic (two runs are bitwise equal).

Set ``REPRO_RELABEL_ENGINES`` (comma list) to choose engines — the CI
engine-matrix runs one engine per job — and ``REPRO_FULL_REGISTRY=1``
to sweep every registry graph instead of the smoke subset.
"""

import os

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph, registry_names
from repro.errors import ConfigError
from repro.graph.relabel import validate_permutation
from repro.metrics.modularity import modularity
from repro.metrics.partition import renumber_membership
from repro.parallel.runtime import Runtime
from tests.conftest import random_graph, two_cliques_graph

FULL_REGISTRY = os.environ.get("REPRO_FULL_REGISTRY") == "1"

SMOKE_GRAPHS = ("asia_osm", "com-Orkut")

GRAPHS = tuple(sorted(registry_names())) if FULL_REGISTRY else SMOKE_GRAPHS

ENGINES = tuple(
    os.environ.get("REPRO_RELABEL_ENGINES", "batch,loop").split(","))

MODES = ("community", "community-degree")


def run_relabeled(graph, engine, *, mode="community", workers=2, seed=42,
                  **cfg_kwargs):
    cfg = LeidenConfig(engine=engine, seed=seed, relabel=mode, **cfg_kwargs)
    if engine == "process":
        rt = Runtime(num_threads=workers, executor="process", seed=seed)
    else:
        rt = Runtime(num_threads=1, seed=seed)
    try:
        return leiden(graph, cfg, runtime=rt)
    finally:
        rt.close()


def assert_relabel_invariants(graph, result):
    relab = result.relabeling
    assert relab is not None
    n = graph.num_vertices
    # (a) bijection + bitwise permute round-trip
    perm = validate_permutation(relab.perm, n)
    assert np.array_equal(relab.inv[perm], np.arange(n))
    g2, inv2 = graph.permute(perm)
    back, _ = g2.permute(inv2)
    compact = graph.compact()
    assert np.array_equal(back.offsets, compact.offsets)
    assert np.array_equal(back.targets, compact.targets)
    assert np.array_equal(back.weights, compact.weights)
    # (b) exact quality layout-invariance of the mapped-back membership
    q_orig = modularity(graph, result.membership)
    q_relab = modularity(g2, relab.to_relabeled(result.membership))
    assert q_orig == q_relab
    # (c) valid compact partition consistent with the dendrogram
    m = result.membership
    assert m.shape[0] == n
    if n:
        ids = np.unique(m)
        assert ids[0] == 0 and ids[-1] == ids.shape[0] - 1
        flat, _ = renumber_membership(result.dendrogram.flatten())
        assert np.array_equal(flat, m)


class TestConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            LeidenConfig(relabel="hilbert")

    def test_accepts_all_modes(self):
        for mode in ("none", "community", "community-degree"):
            assert LeidenConfig(relabel=mode).relabel == mode

    def test_default_off(self):
        res = leiden(two_cliques_graph(), LeidenConfig(seed=1))
        assert res.relabeling is None


class TestRelabelOracle:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("graph_name", GRAPHS)
    def test_registry_invariants(self, engine, graph_name):
        graph = load_graph(graph_name, seed=1)
        result = run_relabeled(graph, engine, mode="community")
        assert_relabel_invariants(graph, result)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_degree_mode(self, engine):
        graph = load_graph("asia_osm", seed=1)
        result = run_relabeled(graph, engine, mode="community-degree")
        assert_relabel_invariants(graph, result)
        assert result.relabeling.mode == "community-degree"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deterministic(self, engine):
        graph = load_graph("asia_osm", seed=1)
        a = run_relabeled(graph, engine)
        b = run_relabeled(graph, engine)
        assert np.array_equal(a.membership, b.membership)
        assert np.array_equal(a.relabeling.perm, b.relabeling.perm)

    def test_quality_comparable_to_unrelabeled(self):
        graph = load_graph("asia_osm", seed=1)
        base = leiden(graph, LeidenConfig(seed=42))
        result = run_relabeled(graph, "batch")
        q_base = modularity(graph, base.membership)
        q_relab = modularity(graph, result.membership)
        # different valid partitions, equally good solutions
        assert abs(q_base - q_relab) < 0.02


class TestWarmStart:
    def test_warm_partition_drives_layout(self):
        graph = two_cliques_graph()
        warm = np.array([0] * 5 + [1] * 5)
        result = leiden(
            graph, LeidenConfig(seed=3, relabel="community"),
            initial_membership=warm)
        assert_relabel_invariants(graph, result)
        assert result.relabeling.num_communities == 2
        assert result.num_communities == 2

    def test_warm_random_graph(self):
        graph = random_graph(n=80, avg_degree=6, seed=9)
        warm = leiden(graph, LeidenConfig(seed=9)).membership
        result = leiden(
            graph, LeidenConfig(seed=9, relabel="community-degree"),
            initial_membership=warm)
        assert_relabel_invariants(graph, result)


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges([], [], num_vertices=0)
        result = leiden(g, LeidenConfig(seed=1, relabel="community"))
        assert result.membership.shape[0] == 0

    def test_ledger_includes_pilot_and_permute(self):
        graph = load_graph("asia_osm", seed=1)
        base = leiden(graph, LeidenConfig(seed=42))
        relab = run_relabeled(graph, "batch")
        # pilot pass + permute charge extra work on top of the main solve
        assert relab.ledger.total_work > base.ledger.total_work
