"""Tests for the real-threads local-moving engine."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.local_move_threads import local_move_threads
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph, two_cliques_graph


def run_threads(graph, num_threads=4, executor="threads", **kwargs):
    n = graph.num_vertices
    C = np.arange(n, dtype=VERTEX_DTYPE)
    K = graph.vertex_weights().copy()
    Sigma = K.copy()
    with Runtime(num_threads=num_threads, executor=executor, seed=1) as rt:
        iters, dq = local_move_threads(
            graph, C, K, Sigma, 0.01, runtime=rt, **kwargs
        )
    return C, Sigma, iters, dq, rt


class TestKernel:
    def test_finds_cliques(self):
        g = two_cliques_graph()
        C, _, _, _, _ = run_threads(g)
        assert len(np.unique(C[:5])) == 1
        assert len(np.unique(C[5:])) == 1
        assert C[0] != C[5]

    def test_sigma_consistent_under_concurrency(self):
        """The lock-guarded atomics must keep Σ exactly consistent with
        the final membership, however the threads interleaved."""
        for seed in range(3):
            g = random_graph(n=100, avg_degree=8, seed=seed)
            C, Sigma, _, _, _ = run_threads(g)
            expect = np.bincount(C, weights=g.vertex_weights(),
                                 minlength=g.num_vertices)
            assert Sigma == pytest.approx(expect), seed

    def test_serial_executor_works_too(self):
        g = two_cliques_graph()
        C, _, _, _, _ = run_threads(g, num_threads=1, executor="serial")
        assert len(np.unique(C)) == 2

    def test_records_work(self):
        g = two_cliques_graph()
        _, _, _, _, rt = run_threads(g)
        assert rt.ledger.total_work > 0

    def test_quality_comparable_to_loop_engine(self):
        from repro.core.local_move import local_move_loop
        g = random_graph(n=150, avg_degree=7, seed=4)
        Ct, _, _, _, _ = run_threads(g)
        Cl = np.arange(g.num_vertices, dtype=VERTEX_DTYPE)
        K = g.vertex_weights().copy()
        local_move_loop(g, Cl, K, K.copy(), 0.01, runtime=Runtime())
        assert abs(modularity(g, Ct) - modularity(g, Cl)) < 0.08

    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        g = empty_csr(0)
        C = np.empty(0, dtype=VERTEX_DTYPE)
        K = g.vertex_weights().copy()
        iters, dq = local_move_threads(g, C, K, K.copy(), 0.01,
                                       runtime=Runtime())
        assert iters == 1 and dq == 0.0


class TestThreadsEngineEndToEnd:
    def test_full_leiden(self):
        g = random_graph(n=150, avg_degree=7, seed=6)
        with Runtime(num_threads=4, executor="threads", seed=6) as rt:
            res = leiden(g, LeidenConfig(engine="threads", seed=6),
                         runtime=rt)
        assert res.num_communities >= 1
        assert modularity(g, res.membership) > 0.25
        assert disconnected_communities(g, res.membership).num_disconnected == 0

    def test_two_cliques(self):
        g = two_cliques_graph()
        res = leiden(g, LeidenConfig(engine="threads"))
        assert res.num_communities == 2

    def test_config_accepts_threads_engine(self):
        assert LeidenConfig(engine="threads").engine == "threads"
