"""Tests for the local-moving phase (both engines)."""

import numpy as np
import pytest

from repro.core.local_move import local_move_batch, local_move_loop
from repro.metrics.modularity import community_weights, modularity
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph, ring_of_cliques_graph, two_cliques_graph


def run_move(graph, engine, tolerance=0.01, membership=None, **kwargs):
    n = graph.num_vertices
    C = (np.arange(n, dtype=VERTEX_DTYPE) if membership is None
         else membership.copy())
    K = graph.vertex_weights().copy()
    Sigma = community_weights(graph, C) if membership is not None else K.copy()
    rt = Runtime(seed=1)
    fn = local_move_batch if engine == "batch" else local_move_loop
    iters, dq = fn(graph, C, K, Sigma, tolerance, runtime=rt, **kwargs)
    return C, Sigma, iters, dq, rt


@pytest.mark.parametrize("engine", ["batch", "loop"])
class TestBothEngines:
    def test_finds_cliques(self, engine):
        g = two_cliques_graph()
        C, _, iters, _, _ = run_move(g, engine)
        assert len(np.unique(C[:5])) == 1
        assert len(np.unique(C[5:])) == 1
        assert C[0] != C[5]

    def test_improves_modularity(self, engine):
        g = ring_of_cliques_graph()
        n = g.num_vertices
        before = modularity(g, np.arange(n, dtype=VERTEX_DTYPE))
        C, _, _, _, _ = run_move(g, engine)
        assert modularity(g, C) > before + 0.3

    def test_sigma_consistent_after_moves(self, engine):
        g = random_graph(n=50, avg_degree=6, seed=2)
        C, Sigma, _, _, _ = run_move(g, engine)
        expect = np.bincount(C, weights=g.vertex_weights(),
                             minlength=g.num_vertices)
        assert Sigma == pytest.approx(expect)

    def test_respects_max_iterations(self, engine):
        g = random_graph(n=60, avg_degree=6, seed=3)
        _, _, iters, _, _ = run_move(g, engine, tolerance=0.0,
                                     max_iterations=2)
        assert iters <= 2

    def test_converged_graph_single_iteration(self, engine):
        g = two_cliques_graph()
        planted = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        C, _, iters, dq, _ = run_move(g, engine, membership=planted)
        assert iters == 1
        assert np.array_equal(C, planted)

    def test_records_work(self, engine):
        g = two_cliques_graph()
        _, _, _, _, rt = run_move(g, engine)
        assert rt.ledger.total_work > 0
        assert "local_move" in rt.ledger.phases()

    def test_empty_graph(self, engine):
        from repro.graph.csr import empty_csr
        g = empty_csr(0)
        C = np.empty(0, dtype=VERTEX_DTYPE)
        K = g.vertex_weights().copy()
        fn = local_move_batch if engine == "batch" else local_move_loop
        iters, dq = fn(g, C, K, K.copy(), 0.01, runtime=Runtime())
        assert iters == 1 and dq == 0.0

    def test_edgeless_graph(self, engine):
        from repro.graph.csr import empty_csr
        g = empty_csr(5)
        C = np.arange(5, dtype=VERTEX_DTYPE)
        K = g.vertex_weights().copy()
        fn = local_move_batch if engine == "batch" else local_move_loop
        iters, _ = fn(g, C, K, K.copy(), 0.01, runtime=Runtime())
        assert np.array_equal(C, np.arange(5))

    def test_self_loops_do_not_move_vertices_alone(self, engine):
        from repro.graph.builder import build_csr_from_edges
        g = build_csr_from_edges([0, 1], [0, 1])  # two self-loops only
        C, _, _, _, _ = run_move(g, engine)
        assert C.tolist() == [0, 1]


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_similar_quality(self, seed):
        g = random_graph(n=80, avg_degree=8, seed=seed)
        Cb, _, _, _, _ = run_move(g, "batch")
        Cl, _, _, _, _ = run_move(g, "loop")
        qb, ql = modularity(g, Cb), modularity(g, Cl)
        assert abs(qb - ql) < 0.1


class TestOscillationResistance:
    def test_path_graph_converges(self):
        """The conveyor pathology: a path must coalesce, not churn."""
        from tests.conftest import path_graph
        g = path_graph(64)
        C, _, iters, _, _ = run_move(g, "batch", batch_size=16)
        assert iters < 20  # did not hit the cap
        # communities should be contiguous runs of length >= 2 mostly
        assert len(np.unique(C)) < 40
