"""Oracle-equivalence tests for the process engine.

The contract (see :mod:`repro.core.local_move_process`) is *bitwise*
equality: at any worker count, the process engine's membership must equal
the simulated ``batch`` engine's, because each worker computes an exact
per-chunk restriction of the frozen-snapshot batch scan and the parent
applies moves in batch position order.

Set ``REPRO_FULL_REGISTRY=1`` (the CI cron job does) to sweep every
registry graph instead of the smoke subset.
"""

import os

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.local_move import local_move_batch
from repro.core.local_move_process import local_move_process
from repro.datasets.registry import load_graph, registry_names
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph, two_cliques_graph

FULL_REGISTRY = os.environ.get("REPRO_FULL_REGISTRY") == "1"

SMOKE_GRAPHS = ("asia_osm", "com-Orkut")


def run_leiden(graph, engine, *, workers=2, seed=42, **cfg_kwargs):
    cfg = LeidenConfig(engine=engine, seed=seed, **cfg_kwargs)
    if engine == "process":
        rt = Runtime(num_threads=workers, executor="process", seed=seed)
    else:
        rt = Runtime(num_threads=1, seed=seed)
    try:
        return leiden(graph, cfg, runtime=rt)
    finally:
        rt.close()


class TestKernelEquivalence:
    """local_move_process against local_move_batch, same inputs."""

    def _pair(self, graph, workers, **kwargs):
        n = graph.num_vertices
        out = []
        for which in ("batch", "process"):
            C = np.arange(n, dtype=VERTEX_DTYPE)
            K = graph.vertex_weights().copy()
            Sigma = K.copy()
            if which == "batch":
                with Runtime(num_threads=1, seed=1) as rt:
                    iters, dq = local_move_batch(
                        graph, C, K, Sigma, 0.01, runtime=rt, **kwargs)
            else:
                with Runtime(num_threads=workers, executor="process",
                             seed=1) as rt:
                    iters, dq = local_move_process(
                        graph, C, K, Sigma, 0.01, runtime=rt,
                        pool=rt.procpool(), **kwargs)
            out.append((C, Sigma, iters, dq))
        return out

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_identical_membership(self, workers):
        g = random_graph(n=200, avg_degree=8, seed=3)
        (Cb, Sb, ib, dqb), (Cp, Sp, ip, dqp) = self._pair(g, workers)
        assert np.array_equal(Cb, Cp)
        assert np.array_equal(Sb, Sp)   # Σ bitwise too, not approx
        assert ib == ip
        assert dqb == dqp

    def test_small_batches_cross_chunk_boundaries(self):
        g = random_graph(n=150, avg_degree=6, seed=9)
        (Cb, _, _, _), (Cp, _, _, _) = self._pair(g, 3, batch_size=17)
        assert np.array_equal(Cb, Cp)

    def test_finds_cliques(self):
        g = two_cliques_graph()
        _, (Cp, _, _, _) = self._pair(g, 2)
        assert len(np.unique(Cp[:5])) == 1
        assert len(np.unique(Cp[5:])) == 1
        assert Cp[0] != Cp[5]

    def test_records_work_and_pool_tasks(self):
        g = random_graph(n=120, avg_degree=6, seed=5)
        with Runtime(num_threads=2, executor="process", seed=1) as rt:
            n = g.num_vertices
            C = np.arange(n, dtype=VERTEX_DTYPE)
            K = g.vertex_weights().copy()
            local_move_process(g, C, K, K.copy(), 0.01, runtime=rt,
                               pool=rt.procpool())
            assert rt.ledger.total_work > 0
            assert rt.procpool().tasks_dispatched > 0


class TestEndToEndOracle:
    """Full leiden() pipeline: engine="process" vs engine="batch"."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_random_graph_any_worker_count(self, workers):
        g = random_graph(n=180, avg_degree=7, seed=11)
        oracle = run_leiden(g, "batch")
        got = run_leiden(g, "process", workers=workers)
        assert np.array_equal(got.membership, oracle.membership)
        assert got.num_passes == oracle.num_passes

    def test_config_variants(self):
        g = random_graph(n=160, avg_degree=8, seed=2)
        variants = [
            dict(quality="cpm", resolution=0.5),
            dict(vertex_pruning=False),
            dict(vertex_order="degree-desc"),
            dict(batch_size=37),
            dict(use_refinement=False),
            dict(refinement="random"),
        ]
        for kwargs in variants:
            oracle = run_leiden(g, "batch", **kwargs)
            got = run_leiden(g, "process", workers=3, **kwargs)
            assert np.array_equal(got.membership, oracle.membership), kwargs

    @pytest.mark.parametrize(
        "name",
        sorted(registry_names()) if FULL_REGISTRY else list(SMOKE_GRAPHS))
    def test_registry_graphs(self, name):
        g = load_graph(name, seed=1)
        oracle = run_leiden(g, "batch")
        got = run_leiden(g, "process", workers=2)
        assert np.array_equal(got.membership, oracle.membership)
        assert got.num_communities == oracle.num_communities
