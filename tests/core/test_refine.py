"""Tests for the refinement phase (both engines, all guards)."""

import numpy as np
import pytest

from repro.core.refine import refine_batch, refine_loop
from repro.metrics.connectivity import disconnected_communities
from repro.parallel.rng import Xorshift32
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE
from tests.conftest import path_graph, random_graph, two_cliques_graph


def run_refine(graph, engine, bounds=None, refinement="greedy", **kwargs):
    n = graph.num_vertices
    CB = (np.zeros(n, dtype=VERTEX_DTYPE) if bounds is None
          else np.asarray(bounds, dtype=VERTEX_DTYPE))
    C = np.arange(n, dtype=VERTEX_DTYPE)
    K = graph.vertex_weights().copy()
    Sigma = K.copy()
    rt = Runtime(seed=5)
    fn = refine_batch if engine == "batch" else refine_loop
    moves = fn(graph, CB, C, K, Sigma, runtime=rt,
               rng=Xorshift32(9), refinement=refinement, **kwargs)
    return C, Sigma, moves, rt


@pytest.mark.parametrize("engine", ["batch", "loop"])
class TestBothEngines:
    def test_merges_within_single_bound(self, engine):
        g = path_graph(20)
        C, _, moves, _ = run_refine(g, engine)
        assert moves > 0
        assert len(np.unique(C)) < 20

    def test_respects_bounds(self, engine):
        g = two_cliques_graph()
        bounds = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        C, _, _, _ = run_refine(g, engine, bounds=bounds)
        # no refined sub-community may span the two bounds
        for comm in np.unique(C):
            members = np.flatnonzero(C == comm)
            assert len(np.unique(bounds[members])) == 1

    def test_sigma_consistent(self, engine):
        g = random_graph(n=50, avg_degree=6, seed=1)
        C, Sigma, _, _ = run_refine(g, engine)
        expect = np.bincount(C, weights=g.vertex_weights(),
                             minlength=g.num_vertices)
        assert Sigma == pytest.approx(expect)

    def test_isolated_only_guarantee(self, engine):
        """Once a sub-community has >= 2 members nobody leaves it, so the
        refined sub-communities are internally connected."""
        g = random_graph(n=60, avg_degree=5, seed=4)
        C, _, _, _ = run_refine(g, engine)
        report = disconnected_communities(g, C)
        assert report.num_disconnected == 0

    def test_random_refinement_merges(self, engine):
        g = path_graph(30)
        C, _, moves, _ = run_refine(g, engine, refinement="random")
        assert moves > 0
        report = disconnected_communities(g, C)
        assert report.num_disconnected == 0

    def test_empty_graph(self, engine):
        from repro.graph.csr import empty_csr
        g = empty_csr(0)
        fn = refine_batch if engine == "batch" else refine_loop
        moves = fn(g, np.empty(0, dtype=VERTEX_DTYPE),
                   np.empty(0, dtype=VERTEX_DTYPE),
                   np.empty(0), np.empty(0), runtime=Runtime())
        assert moves == 0

    def test_records_work(self, engine):
        g = path_graph(10)
        _, _, _, rt = run_refine(g, engine)
        assert "refine" in rt.ledger.phases()


class TestCasSemantics:
    def test_pairs_form_on_path(self):
        """Sequential CAS on a path yields pairwise merges."""
        g = path_graph(8)
        C, _, moves, _ = run_refine(g, "loop")
        assert moves == 4
        sizes = np.bincount(C)
        assert sorted(sizes[sizes > 0].tolist()) == [2, 2, 2, 2]

    def test_batch_matches_loop_on_path(self):
        g = path_graph(8)
        Cb, _, mb, _ = run_refine(g, "batch")
        Cl, _, ml, _ = run_refine(g, "loop")
        assert np.array_equal(Cb, Cl)
        assert mb == ml

    def test_joined_community_members_stay(self):
        """After refinement every non-singleton sub-community's members
        are mutually reachable through intra-community edges."""
        g = random_graph(n=100, avg_degree=4, seed=8)
        C, _, _, _ = run_refine(g, "batch", batch_size=8)
        report = disconnected_communities(g, C)
        assert report.num_disconnected == 0


class TestGuards:
    def test_none_guard_moves_more(self):
        g = random_graph(n=80, avg_degree=6, seed=2)
        _, _, moves_cas, _ = run_refine(g, "batch", guard="cas")
        _, _, moves_none, _ = run_refine(g, "batch", guard="none")
        assert moves_none >= moves_cas

    def test_bad_guard_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            run_refine(g, "batch", guard="strict")

    def test_racy_guard_close_to_cas_quality(self):
        g = random_graph(n=100, avg_degree=6, seed=3)
        C_cas, _, _, _ = run_refine(g, "batch", guard="cas")
        C_racy, _, _, _ = run_refine(g, "batch", guard="racy")
        # racy merges nearly as much; community counts are close
        assert abs(len(np.unique(C_cas)) - len(np.unique(C_racy))) <= 10
