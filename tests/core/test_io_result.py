"""Tests for result persistence."""

import json

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.io_result import (
    RESULT_SCHEMA,
    load_membership_text,
    load_result_json,
    save_membership_text,
    save_result_json,
)
from repro.core.leiden import leiden
from repro.errors import GraphFormatError
from tests.conftest import two_cliques_graph


@pytest.fixture(scope="module")
def result():
    return leiden(two_cliques_graph(), LeidenConfig(seed=1))


class TestText:
    def test_roundtrip(self, result, tmp_path):
        p = tmp_path / "members.txt"
        save_membership_text(result.membership, p)
        back = load_membership_text(p)
        assert np.array_equal(back, result.membership)

    def test_empty(self, tmp_path):
        p = tmp_path / "empty.txt"
        save_membership_text(np.empty(0, dtype=np.int32), p)
        assert load_membership_text(p).shape == (0,)

    def test_bad_content(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("0\nnot-a-number\n")
        with pytest.raises(GraphFormatError):
            load_membership_text(p)


class TestJson:
    def test_roundtrip(self, result, tmp_path):
        p = tmp_path / "result.json"
        cfg = LeidenConfig(seed=1)
        save_result_json(result, p, config=cfg, extra={"graph": "toy"})
        payload = load_result_json(p)
        assert np.array_equal(payload["membership"], result.membership)
        assert payload["num_communities"] == 2
        assert payload["num_passes"] == result.num_passes
        assert payload["config"]["seed"] == 1
        assert payload["extra"] == {"graph": "toy"}
        assert len(payload["passes"]) == result.num_passes

    def test_without_config(self, result, tmp_path):
        p = tmp_path / "r.json"
        save_result_json(result, p)
        assert "config" not in load_result_json(p)

    def test_roundtrip_dendrogram_levels(self, result, tmp_path):
        """Every dendrogram level survives the round trip bitwise, and
        composing the reloaded levels reproduces the membership."""
        p = tmp_path / "r.json"
        save_result_json(result, p)
        payload = load_result_json(p)
        levels = payload["dendrogram"]
        assert len(levels) == len(result.dendrogram)
        for got, want in zip(levels, result.dendrogram):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)
        flat = levels[0].copy()
        for lvl in levels[1:]:
            flat = lvl[flat]
        assert np.array_equal(flat, payload["membership"])

    def test_roundtrip_metadata(self, result, tmp_path):
        p = tmp_path / "r.json"
        save_result_json(result, p, extra={"note": "x"})
        payload = load_result_json(p)
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["wall_seconds"] == result.wall_seconds
        assert payload["extra"] == {"note": "x"}
        for ps, saved in zip(result.passes, payload["passes"]):
            assert saved["num_communities"] == ps.num_communities
            assert saved["move_iterations"] == ps.move_iterations

    def test_rejects_wrong_schema(self, result, tmp_path):
        p = tmp_path / "r.json"
        save_result_json(result, p)
        doc = json.loads(p.read_text())
        doc["schema"] = "repro.result/0"
        p.write_text(json.dumps(doc))
        with pytest.raises(GraphFormatError, match="schema"):
            load_result_json(p)

    def test_rejects_missing_schema(self, result, tmp_path):
        """A pre-/2 file (no schema tag) fails loudly, not deep in use."""
        p = tmp_path / "r.json"
        save_result_json(result, p)
        doc = json.loads(p.read_text())
        del doc["schema"]
        p.write_text(json.dumps(doc))
        with pytest.raises(GraphFormatError, match="schema"):
            load_result_json(p)

    def test_rejects_missing_required_keys(self, result, tmp_path):
        p = tmp_path / "r.json"
        save_result_json(result, p)
        doc = json.loads(p.read_text())
        del doc["membership"], doc["passes"]
        p.write_text(json.dumps(doc))
        with pytest.raises(GraphFormatError, match="membership"):
            load_result_json(p)

    def test_rejects_wrong_format(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text('{"format": "something-else"}')
        with pytest.raises(GraphFormatError):
            load_result_json(p)

    def test_rejects_invalid_json(self, tmp_path):
        p = tmp_path / "broken.json"
        p.write_text("{nope")
        with pytest.raises(GraphFormatError):
            load_result_json(p)

    def test_warm_start_from_saved(self, result, tmp_path):
        """The saved membership feeds straight back into a warm start."""
        p = tmp_path / "r.json"
        save_result_json(result, p)
        payload = load_result_json(p)
        g = two_cliques_graph()
        warm = leiden(g, LeidenConfig(seed=2),
                      initial_membership=payload["membership"])
        assert warm.num_communities == 2
