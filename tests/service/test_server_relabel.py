"""Service-layer relabeling: the stored partition as a serving layout.

With ``ServiceConfig(relabel=...)`` the server derives a community
layout from every committed membership; member queries are served as
slices of the contiguous order.  The answers must be identical (as
sets) to a layout-free server's, and the layout must track refreshes.
"""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.dynamic.batch import EdgeBatch
from repro.errors import ServiceError
from repro.service.server import PartitionServer, ServiceConfig
from repro.service.store import FRESH
from tests.conftest import ring_of_cliques_graph, two_cliques_graph


def make_server(**kwargs) -> PartitionServer:
    cfg = ServiceConfig(leiden=LeidenConfig(seed=1), **kwargs)
    return PartitionServer(cfg)


class TestConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ServiceError):
            ServiceConfig(relabel="hilbert")

    def test_accepts_modes(self):
        for mode in ("none", "community", "community-degree"):
            assert ServiceConfig(relabel=mode).relabel == mode


class TestDetectLayout:
    def test_entry_carries_contiguous_layout(self):
        srv = make_server(relabel="community")
        key = srv.detect(two_cliques_graph()).response["key"]
        entry = srv.store.peek(key)
        assert entry.layout is not None
        assert entry.layout.num_communities == entry.num_communities
        assert entry.index.is_contiguous_layout

    def test_describe_has_layout_block_only_when_on(self):
        on = make_server(relabel="community-degree")
        off = make_server()
        g = two_cliques_graph()
        key_on = on.detect(g).response["key"]
        key_off = off.detect(two_cliques_graph()).response["key"]
        doc_on = on.store.peek(key_on).describe()
        doc_off = off.store.peek(key_off).describe()
        assert doc_on["layout"]["mode"] == "community-degree"
        assert "layout" not in doc_off
        # everything else matches the layout-free server exactly
        doc_on.pop("layout")
        assert doc_on == doc_off

    def test_members_match_layout_free_server(self):
        g = ring_of_cliques_graph()
        fast = make_server(relabel="community")
        plain = make_server()
        key_f = fast.detect(g).response["key"]
        key_p = plain.detect(ring_of_cliques_graph()).response["key"]
        nc = fast.store.peek(key_f).num_communities
        assert nc == plain.store.peek(key_p).num_communities
        for c in range(nc):
            a = fast.query(key_f, "members", community=c).response["value"]
            b = plain.query(key_p, "members", community=c).response["value"]
            assert sorted(a.tolist()) == sorted(b.tolist())

    def test_members_cover_all_vertices(self):
        g = two_cliques_graph()
        srv = make_server(relabel="community")
        key = srv.detect(g).response["key"]
        entry = srv.store.peek(key)
        everyone = np.concatenate([
            srv.query(key, "members", community=c).response["value"]
            for c in range(entry.num_communities)])
        assert sorted(everyone.tolist()) == list(range(g.num_vertices))


class TestRefreshTracksLayout:
    def test_flush_rebuilds_layout(self):
        srv = make_server(relabel="community", max_pending_updates=1)
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        v0 = srv.store.peek(key).version
        srv.update(key, EdgeBatch.from_edges([(0, g.num_vertices - 1)]))
        while srv.step() is not None:
            pass
        entry = srv.store.peek(key)
        assert entry.state == FRESH
        assert entry.version == v0 + 1
        # the refreshed layout groups the *new* membership
        assert entry.index.is_contiguous_layout
        grouped = entry.membership[np.asarray(entry.layout.perm)]
        changes = int(np.count_nonzero(grouped[1:] != grouped[:-1]))
        assert changes + 1 == entry.num_communities

    def test_solver_relabel_composes_with_serving_layout(self):
        # both knobs on: solves run on a relabeled graph AND the server
        # derives a serving layout from the mapped-back membership
        cfg = ServiceConfig(leiden=LeidenConfig(seed=1, relabel="community"),
                            relabel="community")
        srv = PartitionServer(cfg)
        g = two_cliques_graph()
        key = srv.detect(g).response["key"]
        entry = srv.store.peek(key)
        assert entry.index.is_contiguous_layout
        assert entry.num_communities == 2


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
