"""Tests for the query-side community index."""

import numpy as np
import pytest

from repro.service.index import CommunityIndex
from tests.conftest import weighted_triangle_graph


@pytest.fixture
def index():
    return CommunityIndex([0, 1, 0, 2, 1, 0])


class TestBasics:
    def test_shape(self, index):
        assert index.num_vertices == 6
        assert index.num_communities == 3

    def test_community_of(self, index):
        assert index.community_of(0) == 0
        assert index.community_of(3) == 2

    def test_members_sorted(self, index):
        assert index.members(0).tolist() == [0, 2, 5]
        assert index.members(1).tolist() == [1, 4]
        assert index.members(2).tolist() == [3]

    def test_sizes(self, index):
        assert [index.size(c) for c in range(3)] == [3, 2, 1]
        assert int(index.sizes.sum()) == index.num_vertices

    def test_members_partition_vertices(self, index):
        everyone = np.concatenate(
            [index.members(c) for c in range(index.num_communities)])
        assert sorted(everyone.tolist()) == list(range(6))

    def test_empty_membership(self):
        idx = CommunityIndex([])
        assert idx.num_vertices == 0
        assert idx.num_communities == 0

    def test_nbytes_positive(self, index):
        assert index.nbytes > 0


class TestNeighborCommunities:
    def test_weighted_aggregation(self):
        g = weighted_triangle_graph()
        idx = CommunityIndex([0, 1, 1])
        comms, weights = idx.neighbor_communities(g, 0)
        # vertex 0 touches 1 (w=1) and 2 (w=3), both community 1.
        assert comms.tolist() == [1]
        assert weights.tolist() == [4.0]

    def test_split_communities(self):
        g = weighted_triangle_graph()
        idx = CommunityIndex([0, 1, 2])
        comms, weights = idx.neighbor_communities(g, 1)
        assert comms.tolist() == [0, 2]
        assert weights.tolist() == [1.0, 2.0]

    def test_isolated_vertex(self):
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges([0], [1], num_vertices=3)
        idx = CommunityIndex([0, 0, 1])
        comms, weights = idx.neighbor_communities(g, 2)
        assert comms.shape == (0,)
        assert weights.shape == (0,)
