"""Tests for the query-side community index."""

import numpy as np
import pytest

from repro.graph.relabel import community_relabeling
from repro.service.index import CommunityIndex
from tests.conftest import weighted_triangle_graph


@pytest.fixture
def index():
    return CommunityIndex([0, 1, 0, 2, 1, 0])


class TestBasics:
    def test_shape(self, index):
        assert index.num_vertices == 6
        assert index.num_communities == 3

    def test_community_of(self, index):
        assert index.community_of(0) == 0
        assert index.community_of(3) == 2

    def test_members_sorted(self, index):
        assert index.members(0).tolist() == [0, 2, 5]
        assert index.members(1).tolist() == [1, 4]
        assert index.members(2).tolist() == [3]

    def test_sizes(self, index):
        assert [index.size(c) for c in range(3)] == [3, 2, 1]
        assert int(index.sizes.sum()) == index.num_vertices

    def test_members_partition_vertices(self, index):
        everyone = np.concatenate(
            [index.members(c) for c in range(index.num_communities)])
        assert sorted(everyone.tolist()) == list(range(6))

    def test_empty_membership(self):
        idx = CommunityIndex([])
        assert idx.num_vertices == 0
        assert idx.num_communities == 0

    def test_nbytes_positive(self, index):
        assert index.nbytes > 0


class TestMembersSlice:
    MEMBERSHIP = [2, 0, 1, 0, 2, 1, 0]

    def _layout(self):
        return community_relabeling(
            None, [np.array(self.MEMBERSHIP)], mode="community")

    def test_fast_path_enabled_with_layout(self):
        idx = CommunityIndex(self.MEMBERSHIP, layout=self._layout())
        assert idx.is_contiguous_layout

    def test_without_layout_falls_back(self):
        idx = CommunityIndex(self.MEMBERSHIP)
        assert not idx.is_contiguous_layout
        assert idx.members_slice(0).tolist() == idx.members(0).tolist()

    def test_both_paths_return_identical_members(self):
        plain = CommunityIndex(self.MEMBERSHIP)
        fast = CommunityIndex(self.MEMBERSHIP, layout=self._layout())
        for c in range(plain.num_communities):
            assert (sorted(fast.members_slice(c).tolist())
                    == sorted(plain.members_slice(c).tolist()))
            assert (sorted(fast.members_slice(c).tolist())
                    == plain.members(c).tolist())

    def test_fast_path_is_view_not_copy(self):
        idx = CommunityIndex(self.MEMBERSHIP, layout=self._layout())
        sl = idx.members_slice(0)
        assert sl.base is idx._slice_order

    def test_non_contiguous_layout_rejected(self):
        # a layout built from a *different* membership does not group
        # this one — the fast path must stay off
        other = community_relabeling(
            None, [np.array([0, 1, 0, 1, 0, 1, 0])], mode="community")
        idx = CommunityIndex(self.MEMBERSHIP, layout=other)
        assert not idx.is_contiguous_layout
        for c in range(idx.num_communities):
            assert idx.members_slice(c).tolist() == idx.members(c).tolist()

    def test_nbytes_accounts_for_slice_order(self):
        plain = CommunityIndex(self.MEMBERSHIP)
        fast = CommunityIndex(self.MEMBERSHIP, layout=self._layout())
        assert fast.nbytes > plain.nbytes

    def test_empty_membership_with_layout(self):
        layout = community_relabeling(
            None, [np.empty(0, dtype=np.int64)], mode="community")
        idx = CommunityIndex([], layout=layout)
        assert idx.num_communities == 0


class TestNeighborCommunities:
    def test_weighted_aggregation(self):
        g = weighted_triangle_graph()
        idx = CommunityIndex([0, 1, 1])
        comms, weights = idx.neighbor_communities(g, 0)
        # vertex 0 touches 1 (w=1) and 2 (w=3), both community 1.
        assert comms.tolist() == [1]
        assert weights.tolist() == [4.0]

    def test_split_communities(self):
        g = weighted_triangle_graph()
        idx = CommunityIndex([0, 1, 2])
        comms, weights = idx.neighbor_communities(g, 1)
        assert comms.tolist() == [0, 2]
        assert weights.tolist() == [1.0, 2.0]

    def test_isolated_vertex(self):
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges([0], [1], num_vertices=3)
        idx = CommunityIndex([0, 0, 1])
        comms, weights = idx.neighbor_communities(g, 2)
        assert comms.shape == (0,)
        assert weights.shape == (0,)
