"""Tests for the seeded closed-loop workload driver."""

import json

import pytest

from repro.errors import ConfigError
from repro.service.server import PartitionServer, ServiceConfig
from repro.service.workload import (
    PROFILES,
    WORKLOAD_SCHEMA,
    run_workload,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_workload("tiny", seed=0)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"tiny", "quick", "smoke"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            run_workload("nope")


class TestRun:
    def test_membership_matches_scratch(self, tiny_result):
        assert tiny_result.membership_matches_scratch == {"com-Orkut": True}

    def test_all_queries_served_without_recompute(self, tiny_result):
        """>= 95% of queries answered fresh-or-stale from the store; the
        query path never triggers a solve."""
        c = tiny_result.stats["counters"]
        prof = PROFILES["tiny"]
        assert c["queries_served"] == prof.num_queries
        assert c["queries_not_found"] == 0
        assert tiny_result.stats["derived"]["query_served_fraction"] >= 0.95

    def test_coalescing_exercised(self, tiny_result):
        c = tiny_result.stats["counters"]
        q = tiny_result.stats["queue"]
        assert q["coalesced_detects"] == PROFILES["tiny"].duplicate_detects
        assert c["updates_accepted"] == 4
        assert c["update_flushes"] < c["updates_accepted"]

    def test_stale_serving_happens(self, tiny_result):
        assert tiny_result.stats["counters"]["queries_served_stale"] > 0

    def test_deterministic_json(self, tiny_result):
        again = run_workload("tiny", seed=0)
        a = json.dumps(tiny_result.to_json_dict(), sort_keys=True)
        b = json.dumps(again.to_json_dict(), sort_keys=True)
        assert a == b

    def test_seed_changes_stats(self, tiny_result):
        other = run_workload("tiny", seed=1, verify=False)
        assert (other.stats["clock_units"]
                != tiny_result.stats["clock_units"]) or (
            other.stats != tiny_result.stats)

    def test_schema_tag(self, tiny_result):
        assert tiny_result.to_json_dict()["schema"] == WORKLOAD_SCHEMA

    def test_preconfigured_server(self):
        srv = PartitionServer(ServiceConfig(queue_capacity=8))
        result = run_workload("tiny", seed=0, server=srv, verify=False)
        assert result.stats["queue"]["capacity"] == 8
        # Closed-loop clients absorb backpressure by draining first.
        assert result.stats["queue"]["rejected"] == result.overloads
