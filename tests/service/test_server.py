"""Tests for the partition server event loop."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.dynamic.batch import EdgeBatch, apply_batch, random_batch
from repro.errors import ServiceError, ServiceOverloadError
from repro.observability.tracer import Tracer
from repro.service.requests import (
    DetectRequest,
    QueryRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.service.server import STATS_SCHEMA, PartitionServer, ServiceConfig
from repro.service.store import DEGRADED, FRESH, STALE
from tests.conftest import ring_of_cliques_graph, two_cliques_graph


def make_server(**kwargs) -> PartitionServer:
    cfg = ServiceConfig(leiden=LeidenConfig(seed=1), **kwargs)
    return PartitionServer(cfg)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_pending_updates=0)
        with pytest.raises(ServiceError):
            ServiceConfig(full_recompute_threshold=1.5)
        with pytest.raises(ServiceError):
            ServiceConfig(max_retries=-1)


class TestDetect:
    def test_detect_solves_and_stores(self):
        srv = make_server()
        ticket = srv.detect(two_cliques_graph())
        assert ticket.status == "done"
        assert ticket.response["num_communities"] == 2
        assert srv.store.peek(ticket.response["key"]).state == FRESH
        assert srv.counters["detect_runs"] == 1

    def test_repeat_detect_hits_cache(self):
        srv = make_server()
        srv.detect(two_cliques_graph())
        srv.detect(two_cliques_graph())  # same content, new object
        assert srv.counters["detect_runs"] == 1
        assert srv.counters["detect_cache_hits"] == 1

    def test_inflight_detects_coalesce(self):
        srv = make_server()
        g = two_cliques_graph()
        t1 = srv.submit(DetectRequest(g))
        t2 = srv.submit(DetectRequest(two_cliques_graph()))
        assert t2 is t1
        srv.drain()
        assert t1.status == "done"
        assert t1.coalesced == 1
        assert srv.counters["detect_runs"] == 1

    def test_clock_advances_by_solver_work(self):
        srv = make_server()
        srv.detect(two_cliques_graph())
        assert srv.clock > 0


class TestQuery:
    def test_query_kinds(self):
        srv = make_server()
        key = srv.detect(two_cliques_graph()).response["key"]
        t = srv.query(key, "community_of", vertex=0)
        c = t.response["value"]
        members = srv.query(key, "members", community=c).response["value"]
        assert 0 in members.tolist()
        nc = srv.query(key, "neighbor_communities",
                       vertex=0).response["value"]
        assert nc["communities"].shape == nc["weights"].shape
        m = srv.query(key, "membership").response["value"]
        assert m.shape[0] == 10

    def test_unknown_key_not_found(self):
        srv = make_server()
        t = srv.query("nope")
        assert t.status == "not_found"
        assert srv.counters["queries_not_found"] == 1

    def test_query_never_recomputes(self):
        srv = make_server()
        key = srv.detect(two_cliques_graph()).response["key"]
        runs = srv.counters["detect_runs"]
        for v in range(10):
            srv.query(key, "community_of", vertex=v)
        assert srv.counters["detect_runs"] == runs
        assert (srv.counters["incremental_refreshes"]
                + srv.counters["full_recomputes"]) == 0


class TestUpdate:
    def test_update_serves_stale_until_flush(self):
        srv = make_server(max_pending_updates=8)
        g = two_cliques_graph()
        key = srv.detect(g).response["key"]
        srv.update(key, EdgeBatch.from_edges([(0, 7)]))
        while srv.step() is not None:
            pass
        entry = srv.store.peek(key)
        assert entry.state == STALE
        t = srv.query(key, "community_of", vertex=0)
        assert t.response["state"] == STALE
        assert srv.counters["queries_served_stale"] == 1

    def test_flush_at_max_pending(self):
        srv = make_server(max_pending_updates=2)
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        srv.update(key, random_batch(g, num_insertions=2, seed=1))
        while srv.step() is not None:
            pass
        assert srv.counters["update_flushes"] == 0
        srv.update(key, random_batch(g, num_insertions=2, seed=2))
        while srv.step() is not None:
            pass
        assert srv.counters["update_flushes"] == 1
        assert srv.store.peek(key).state == FRESH
        assert srv.store.peek(key).version == 2

    def test_queue_level_micro_batching(self):
        """Back-to-back UPDATEs ride one flush: the queued backlog is
        pulled in when the first reaches the head."""
        srv = make_server(max_pending_updates=3)
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        tickets = [
            srv.submit(UpdateRequest(
                key, random_batch(g, num_insertions=2, seed=i)))
            for i in range(3)
        ]
        while srv.step() is not None:
            pass
        assert srv.counters["update_flushes"] == 1
        assert srv.counters["updates_coalesced"] == 2
        assert all(t.status == "done" for t in tickets)

    def test_unknown_key_not_found(self):
        srv = make_server()
        t = srv.update("nope", EdgeBatch.from_edges([(0, 1)]))
        while srv.step() is not None:
            pass
        assert t.status == "not_found"

    def test_full_recompute_fallback(self):
        """A batch touching more than the threshold fraction recomputes
        from scratch instead of warm-starting."""
        srv = make_server(full_recompute_threshold=0.05,
                          max_pending_updates=1)
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        srv.update(key, random_batch(g, num_insertions=20, seed=3))
        while srv.step() is not None:
            pass
        assert srv.counters["full_recomputes"] == 1
        assert srv.counters["incremental_refreshes"] == 0


class TestDrainAndReconcile:
    def test_membership_matches_scratch_after_drain(self):
        srv = make_server()
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        batches = [random_batch(g, num_insertions=3, num_deletions=2,
                                seed=i) for i in range(3)]
        for b in batches:
            srv.update(key, b)
        srv.drain()
        entry = srv.store.peek(key)
        final = g
        for b in batches:
            final = apply_batch(final, b)
        scratch = leiden(final, srv.config.leiden)
        assert entry.graph == final
        assert np.array_equal(entry.membership, scratch.membership)
        assert entry.state == FRESH

    def test_reconcile_disabled(self):
        srv = PartitionServer(ServiceConfig(
            leiden=LeidenConfig(seed=1), reconcile_on_drain=False,
            full_recompute_threshold=1.0))
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        srv.update(key, random_batch(g, num_insertions=2, seed=1))
        srv.drain()
        assert srv.counters["reconciles"] == 0


class TestBackpressure:
    def test_overload_raises(self):
        srv = make_server(queue_capacity=2)
        srv.submit(QueryRequest("a"))
        srv.submit(QueryRequest("b"))
        with pytest.raises(ServiceOverloadError):
            srv.submit(QueryRequest("c"))
        srv.drain()
        srv.submit(QueryRequest("c"))  # admitted after drain


class TestFaults:
    def test_retry_then_succeed(self):
        fails = {"n": 0}

        def hook(op, attempt):
            if op == "detect" and attempt == 0:
                fails["n"] += 1
                raise RuntimeError("injected")

        srv = PartitionServer(
            ServiceConfig(leiden=LeidenConfig(seed=1), max_retries=2),
            fault_hook=hook)
        t = srv.detect(two_cliques_graph())
        assert t.status == "done"
        assert fails["n"] == 1
        assert srv.counters["solve_retries"] == 1
        assert srv.counters["solve_failures"] == 0

    def test_backoff_advances_clock(self):
        def hook(op, attempt):
            if attempt == 0:
                raise RuntimeError("injected")

        cfg = ServiceConfig(leiden=LeidenConfig(seed=1), backoff_units=100)
        srv = PartitionServer(cfg, fault_hook=hook)
        base = PartitionServer(ServiceConfig(leiden=LeidenConfig(seed=1)))
        srv.detect(two_cliques_graph())
        base.detect(two_cliques_graph())
        assert srv.clock == base.clock + 100

    def test_detect_fails_past_budget(self):
        def hook(op, attempt):
            raise RuntimeError("injected")

        srv = PartitionServer(
            ServiceConfig(leiden=LeidenConfig(seed=1), max_retries=1),
            fault_hook=hook)
        t = srv.detect(two_cliques_graph())
        assert t.status == "failed"
        assert srv.counters["solve_failures"] == 1
        assert srv.counters["solve_retries"] == 1

    def test_refresh_failure_degrades_to_last_good(self):
        state = {"fail": False}

        def hook(op, attempt):
            if state["fail"] and op in ("refresh", "reconcile"):
                raise RuntimeError("injected")

        srv = PartitionServer(
            ServiceConfig(leiden=LeidenConfig(seed=1), max_retries=0,
                          max_pending_updates=1),
            fault_hook=hook)
        g = ring_of_cliques_graph()
        key = srv.detect(g).response["key"]
        good = srv.store.peek(key).membership.copy()
        state["fail"] = True
        t = srv.update(key, random_batch(g, num_insertions=2, seed=1))
        while srv.step() is not None:
            pass
        entry = srv.store.peek(key)
        assert t.status == "failed"
        assert entry.state == DEGRADED
        assert np.array_equal(entry.membership, good)  # last good served
        q = srv.query(key, "membership")
        assert q.status == "done"
        # Recovery: the next successful flush returns to FRESH.
        state["fail"] = False
        srv.update(key, random_batch(g, num_insertions=2, seed=2))
        srv.drain()
        assert srv.store.peek(key).state == FRESH


class TestStats:
    def test_schema_and_shape(self):
        srv = make_server()
        key = srv.detect(two_cliques_graph()).response["key"]
        srv.query(key, "community_of", vertex=1)
        doc = srv.stats_snapshot()
        assert doc["schema"] == STATS_SCHEMA
        assert doc["requests"]["detect"] == 1
        assert doc["requests"]["query"] == 1
        assert doc["latency_units"]["query"]["count"] == 1
        assert key in doc["partitions"]
        assert doc["derived"]["query_served_fraction"] == 1.0

    def test_stats_via_request(self):
        srv = make_server()
        t = srv.submit(StatsRequest())
        while srv.step() is not None:
            pass
        assert t.response["schema"] == STATS_SCHEMA

    def test_deterministic_across_runs(self):
        def run():
            srv = make_server()
            key = srv.detect(two_cliques_graph()).response["key"]
            for v in range(5):
                srv.query(key, "community_of", vertex=v)
            srv.update(key, EdgeBatch.from_edges([(2, 8)]))
            srv.drain()
            return srv.stats()

        assert run() == run()


class TestTracing:
    def test_spans_and_latency_histogram(self):
        tracer = Tracer()
        srv = PartitionServer(ServiceConfig(leiden=LeidenConfig(seed=1)),
                              tracer=tracer)
        key = srv.detect(two_cliques_graph()).response["key"]
        srv.query(key, "community_of", vertex=0)
        names = {s.name for s in tracer.root.children}
        assert "service.detect" in names
        assert "service.query" in names
        derived = tracer.derived_metrics()
        assert "service_request_seconds_p50" in derived
        assert "service_latency_units_p99" in derived
