"""Tests for typed requests, the admission queue and UPDATE coalescing."""

import numpy as np
import pytest

from repro.dynamic.batch import EdgeBatch, apply_batch, random_batch
from repro.errors import ServiceOverloadError
from repro.service.requests import (
    AdmissionQueue,
    DetectRequest,
    QueryRequest,
    StatsRequest,
    UpdateRequest,
    coalesce_update_batches,
)
from tests.conftest import two_cliques_graph


class TestRequests:
    def test_query_kind_validated(self):
        with pytest.raises(ValueError):
            QueryRequest("key", "bogus")

    def test_detect_store_key_is_content_keyed(self):
        a = DetectRequest(two_cliques_graph())
        b = DetectRequest(two_cliques_graph())
        assert a.store_key() == b.store_key()

    def test_kinds(self):
        assert DetectRequest(two_cliques_graph()).kind == "detect"
        assert QueryRequest("k").kind == "query"
        assert UpdateRequest("k").kind == "update"
        assert StatsRequest().kind == "stats"


class TestAdmissionQueue:
    def test_fifo(self):
        q = AdmissionQueue()
        t1 = q.submit(QueryRequest("a"))
        t2 = q.submit(QueryRequest("b"))
        assert q.pop() is t1
        assert q.pop() is t2
        assert q.pop() is None

    def test_backpressure(self):
        q = AdmissionQueue(capacity=2)
        q.submit(QueryRequest("a"))
        q.submit(QueryRequest("b"))
        with pytest.raises(ServiceOverloadError):
            q.submit(QueryRequest("c"))
        assert q.rejected == 1
        q.pop()
        q.submit(QueryRequest("c"))  # room again after a pop

    def test_rejections_counted_in_metrics(self):
        # Filling a bounded queue must surface on the
        # queue_rejected_total counter, not just the raised error.
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        q = AdmissionQueue(capacity=3, metrics=registry)
        for name in "abc":
            q.submit(QueryRequest(name))
        for name in "xyz":
            with pytest.raises(ServiceOverloadError):
                q.submit(QueryRequest(name))
        assert registry.get("queue_rejected_total").value() == 3.0
        assert q.rejected == 3

    def test_rejected_counter_registered_eagerly(self):
        # The family must exist (at zero) before any overflow, so
        # scrapes and the exact-match metrics baselines see it.
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        AdmissionQueue(capacity=2, metrics=registry)
        assert registry.get("queue_rejected_total").value() == 0.0

    def test_server_wires_queue_rejections_to_its_registry(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.service.server import PartitionServer, ServiceConfig

        registry = MetricsRegistry()
        srv = PartitionServer(ServiceConfig(queue_capacity=1),
                              metrics=registry)
        srv.submit(QueryRequest("a"))
        with pytest.raises(ServiceOverloadError):
            srv.submit(QueryRequest("b"))
        assert registry.get("queue_rejected_total").value() == 1.0

    def test_detect_dedup(self):
        q = AdmissionQueue()
        g = two_cliques_graph()
        t1 = q.submit(DetectRequest(g))
        t2 = q.submit(DetectRequest(two_cliques_graph()))  # same content
        assert t2 is t1
        assert t1.coalesced == 1
        assert q.coalesced_detects == 1
        assert len(q) == 1

    def test_detect_dedup_released_by_finish(self):
        q = AdmissionQueue()
        g = two_cliques_graph()
        t1 = q.submit(DetectRequest(g))
        q.pop()
        t1.status = "done"
        q.finish_detect(DetectRequest(g).store_key())
        t2 = q.submit(DetectRequest(g))
        assert t2 is not t1

    def test_pop_matching_updates(self):
        q = AdmissionQueue()
        ua1 = q.submit(UpdateRequest("a"))
        qb = q.submit(QueryRequest("b"))
        ua2 = q.submit(UpdateRequest("a"))
        ub = q.submit(UpdateRequest("b"))
        matched = q.pop_matching_updates("a")
        assert matched == [ua1, ua2]
        assert q.pop() is qb
        assert q.pop() is ub

    def test_stats(self):
        q = AdmissionQueue(capacity=4)
        q.submit(QueryRequest("a"))
        q.submit(QueryRequest("b"))
        q.pop()
        s = q.stats()
        assert s["submitted"] == 2
        assert s["depth"] == 1
        assert s["max_depth"] == 2
        assert s["capacity"] == 4


def sequential(graph, batches):
    for b in batches:
        graph = apply_batch(graph, b)
    return graph


class TestCoalesceUpdateBatches:
    def test_single_batch_passthrough(self):
        b = EdgeBatch.from_edges([(0, 1)])
        assert coalesce_update_batches([b]) is b

    def test_empty_input(self):
        merged = coalesce_update_batches([])
        assert merged.num_insertions == 0
        assert merged.num_deletions == 0

    def test_insert_then_delete_cancels(self, two_cliques):
        """An insertion wiped by a later batch's deletion must not
        resurface in the one-shot application."""
        batches = [
            EdgeBatch.from_edges([(0, 7)]),
            EdgeBatch.from_edges(deletions=[(0, 7)]),
        ]
        merged = coalesce_update_batches(batches)
        assert (apply_batch(two_cliques, merged)
                == sequential(two_cliques, batches))

    def test_delete_then_insert_survives(self, two_cliques):
        batches = [
            EdgeBatch.from_edges(deletions=[(0, 5)]),
            EdgeBatch.from_edges([(0, 5)], insert_weights=[2.0]),
        ]
        merged = coalesce_update_batches(batches)
        assert (apply_batch(two_cliques, merged)
                == sequential(two_cliques, batches))

    def test_same_batch_insert_and_delete(self, two_cliques):
        """Within one batch deletions go first, so its own insertion of
        the same pair survives — the merge must keep it."""
        batches = [
            EdgeBatch.from_edges([(0, 5)], deletions=[(0, 5)],
                                 insert_weights=[3.0]),
            EdgeBatch.from_edges([(1, 6)]),
        ]
        merged = coalesce_update_batches(batches)
        assert (apply_batch(two_cliques, merged)
                == sequential(two_cliques, batches))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sequential_equivalence_random(self, seed):
        """One-shot application of the merged batch is bitwise equal to
        applying the batches in order (the micro-batching invariant)."""
        graph = two_cliques_graph(6)
        batches = [
            random_batch(graph, num_insertions=4, num_deletions=3,
                         seed=seed * 10 + i)
            for i in range(4)
        ]
        merged = coalesce_update_batches(batches)
        one_shot = apply_batch(graph, merged)
        step_wise = sequential(graph, batches)
        assert one_shot == step_wise
        assert np.array_equal(one_shot.offsets, step_wise.offsets)
        assert np.array_equal(one_shot.targets, step_wise.targets)
        assert np.array_equal(one_shot.weights, step_wise.weights)
