"""Tests for server-side metrics instruments and SLO health wiring."""

import pytest

from repro.core.config import LeidenConfig
from repro.dynamic.batch import random_batch
from repro.observability.health import (
    HealthEvaluator,
    SLObjective,
    default_service_slos,
)
from repro.observability.metrics import NULL_REGISTRY, MetricsRegistry
from repro.service.requests import DetectRequest, QueryRequest
from repro.service.server import PartitionServer, ServiceConfig
from tests.conftest import ring_of_cliques_graph, two_cliques_graph


def make_server(*, metrics=None, health=None, **kwargs) -> PartitionServer:
    cfg = ServiceConfig(leiden=LeidenConfig(seed=1), **kwargs)
    return PartitionServer(cfg, metrics=metrics, health=health)


class TestServerInstruments:
    def test_defaults_to_null_registry(self):
        srv = make_server()
        assert srv.metrics is NULL_REGISTRY
        assert srv.health is None

    def test_request_counters_by_kind_and_status(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        ticket = srv.detect(two_cliques_graph())
        srv.query(ticket.response["key"], "community_of", vertex=0)
        srv.query("no-such-key", "community_of", vertex=0)
        req = reg.get("service_requests_total")
        assert req.value("detect", "done") == 1.0
        assert req.value("query", "done") == 1.0
        assert req.value("query", "not_found") == 1.0

    def test_latency_histogram_per_kind(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        ticket = srv.detect(two_cliques_graph())
        srv.query(ticket.response["key"], "community_of", vertex=0)
        lat = reg.get("service_latency_units")
        assert lat._data[("detect",)].count == 1
        assert lat._data[("query",)].count == 1
        # Latency is measured on the logical clock: a detect (full
        # solve) costs more units than a store lookup query.
        assert lat._data[("detect",)].min > lat._data[("query",)].max

    def test_store_lookup_and_bytes_instruments(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        ticket = srv.detect(two_cliques_graph())
        srv.query(ticket.response["key"], "community_of", vertex=0)
        lookups = reg.get("service_store_lookups_total")
        assert lookups.value("hit") >= 1.0
        assert reg.get("mem_store_bytes").value() > 0.0

    def test_detect_dedup_counter(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        g = two_cliques_graph()
        srv.submit(DetectRequest(g))
        srv.submit(DetectRequest(g))  # coalesces onto the queued original
        while srv.step() is not None:
            pass
        assert reg.get("service_detect_dedups_total").value() == 1.0

    def test_queue_depth_gauge_tracks_backlog(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        g = two_cliques_graph()
        srv.submit(DetectRequest(g))
        depth = reg.get("service_queue_depth")
        assert depth.value() == 1.0
        while srv.step() is not None:
            pass
        assert depth.value() == 0.0

    def test_refresh_mode_counters(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        g = ring_of_cliques_graph()
        ticket = srv.detect(g)
        key = ticket.response["key"]
        batch = random_batch(g, num_insertions=2, num_deletions=2, seed=3)
        srv.update(key, batch)
        srv.drain()
        refreshes = reg.get("service_refreshes_total")
        modes = {k[0] for k in refreshes._values if refreshes._values[k]}
        assert modes  # at least one of full/incremental/reconcile fired

    def test_solve_kernels_counted(self):
        reg = MetricsRegistry()
        srv = make_server(metrics=reg)
        srv.detect(two_cliques_graph())
        passes = reg.get("leiden_passes_total")
        assert passes is not None and passes.value() >= 1.0
        dispatch = reg.get("kernel_dispatch_total")
        assert dispatch is not None
        assert sum(dispatch._values.values()) > 0


class TestServerHealth:
    def test_stats_health_block_only_when_attached(self):
        srv = make_server()
        assert "health" not in srv.stats_snapshot()
        health = HealthEvaluator(default_service_slos())
        srv2 = make_server(health=health)
        doc = srv2.stats_snapshot()
        assert doc["health"]["schema"] == "repro.health/1"
        assert doc["health"]["state"] == "OK"

    def test_latency_and_error_signals_recorded(self):
        health = HealthEvaluator(default_service_slos())
        srv = make_server(health=health)
        ticket = srv.detect(two_cliques_graph())
        srv.query(ticket.response["key"], "community_of", vertex=0)
        assert len(health._samples["query_latency_units"]) == 1
        assert len(health._samples["request_errors"]) == 2
        # All requests succeeded: zero burn on the error budget.
        doc = health.evaluate(srv.clock)
        err = next(o for o in doc["objectives"] if o["name"] == "error_ratio")
        assert err["long"]["bad"] == 0

    def test_stale_serve_recorded_as_bad_event(self):
        health = HealthEvaluator(default_service_slos())
        srv = make_server(health=health)
        g = ring_of_cliques_graph()
        ticket = srv.detect(g)
        key = ticket.response["key"]
        # An accepted-but-unflushed update turns the entry stale; the
        # next query serves stale and must record a bad staleness event.
        srv.update(key, random_batch(g, num_insertions=2, num_deletions=2,
                                     seed=5))
        srv.query(key, "community_of", vertex=0)
        stale = [v for _, v in health._samples["stale_serves"]]
        assert 1.0 in stale

    def test_ok_warn_page_under_injected_slowdown(self):
        # One tight latency objective on QUERY requests; slowdown is
        # injected by stretching the logical query cost, the same lever
        # the PR 1 perf-gate test uses for wall-time regressions.
        slo = SLObjective(name="q_lat", signal="query_latency_units",
                          kind="latency", target=4.0, budget=0.1,
                          long_window=4000, short_window=400,
                          warn_burn=1.0, page_burn=5.0)

        def run_queries(srv, key, n):
            for _ in range(n):
                srv.query(key, "community_of", vertex=0)

        # Healthy server: query cost under target -> OK.
        health = HealthEvaluator([slo])
        srv = make_server(health=health, query_cost_units=2)
        key = srv.detect(two_cliques_graph()).response["key"]
        run_queries(srv, key, 40)
        assert health.state(srv.clock) == "OK"

        # Degraded server: every query now costs 8 units (> target 4),
        # burn = 1/0.1 = 10 in both windows -> PAGE.
        health = HealthEvaluator([slo])
        srv = make_server(health=health, query_cost_units=8)
        key = srv.detect(two_cliques_graph()).response["key"]
        run_queries(srv, key, 40)
        assert health.state(srv.clock) == "PAGE"

        # Mildly degraded: alternate good and bad query costs by
        # stretching every other query -> ~50% bad -> burn 5 on a 0.1
        # budget trips WARN... and with page_burn=5 this sits exactly at
        # the PAGE edge, so use a 30% mix for an unambiguous WARN.
        from dataclasses import replace

        health = HealthEvaluator([slo])
        srv = make_server(health=health, query_cost_units=2)
        key = srv.detect(two_cliques_graph()).response["key"]
        slow = replace(srv.config, query_cost_units=8)
        fast = srv.config
        for i in range(40):
            srv.config = slow if i % 3 == 0 else fast
            srv.query(key, "community_of", vertex=0)
        assert health.state(srv.clock) == "WARN"

    def test_metrics_and_health_snapshot_consistent(self):
        reg = MetricsRegistry()
        health = HealthEvaluator(default_service_slos())
        srv = make_server(metrics=reg, health=health)
        ticket = srv.detect(two_cliques_graph())
        srv.query(ticket.response["key"], "community_of", vertex=0)
        doc = reg.to_snapshot(health=health.evaluate(srv.clock))
        assert doc["health"]["state"] == "OK"
        # The histogram count matches the number of completed requests.
        lat = doc["families"]["service_latency_units"]["series"]
        assert sum(s["count"] for s in lat) == \
            sum(s["value"] for s in
                doc["families"]["service_requests_total"]["series"])
