"""Tests for the byte-budgeted LRU partition store."""

import numpy as np

from repro.service.index import CommunityIndex
from repro.service.store import FRESH, STALE, PartitionEntry, PartitionStore
from tests.conftest import two_cliques_graph


def make_entry(key: str, graph=None) -> PartitionEntry:
    g = graph if graph is not None else two_cliques_graph()
    membership = np.zeros(g.num_vertices, dtype=np.int32)
    return PartitionEntry(
        key=key,
        fingerprint=g.fingerprint(),
        graph=g,
        membership=membership,
        index=CommunityIndex(membership),
    )


class TestLookups:
    def test_get_counts_hits_and_misses(self):
        store = PartitionStore()
        assert store.get("nope") is None
        store.put(make_entry("a"))
        assert store.get("a") is not None
        assert store.hits == 1
        assert store.misses == 1
        assert store.hit_rate() == 0.5

    def test_stale_entries_served_and_counted(self):
        store = PartitionStore()
        entry = make_entry("a")
        entry.state = STALE
        store.put(entry)
        got = store.get("a")
        assert got is entry
        assert store.stale_hits == 1

    def test_peek_does_not_touch_counters(self):
        store = PartitionStore()
        store.put(make_entry("a"))
        store.peek("a")
        store.peek("nope")
        assert store.hits == 0
        assert store.misses == 0

    def test_contains_and_len(self):
        store = PartitionStore()
        store.put(make_entry("a"))
        assert "a" in store
        assert "b" not in store
        assert len(store) == 1


class TestEviction:
    def test_lru_eviction_over_budget(self):
        one = make_entry("a")
        store = PartitionStore(budget_bytes=int(one.nbytes * 2.5))
        store.put(one)
        store.put(make_entry("b"))
        store.put(make_entry("c"))  # over budget -> evict LRU ("a")
        assert store.keys() == ["b", "c"]
        assert store.evictions == 1

    def test_get_refreshes_lru_order(self):
        one = make_entry("a")
        store = PartitionStore(budget_bytes=int(one.nbytes * 2.5))
        store.put(one)
        store.put(make_entry("b"))
        store.get("a")  # touch: "b" becomes LRU
        store.put(make_entry("c"))
        assert store.keys() == ["a", "c"]

    def test_most_recent_never_evicted(self):
        entry = make_entry("a")
        store = PartitionStore(budget_bytes=1)  # smaller than any entry
        store.put(entry)
        assert store.peek("a") is entry
        assert store.total_bytes > store.budget_bytes

    def test_put_replaces_same_key(self):
        store = PartitionStore()
        store.put(make_entry("a"))
        newer = make_entry("a")
        newer.version = 2
        store.put(newer)
        assert len(store) == 1
        assert store.peek("a").version == 2


class TestEntry:
    def test_describe_is_deterministic_snapshot(self):
        entry = make_entry("a")
        d = entry.describe()
        assert d == {
            "fingerprint": entry.fingerprint,
            "version": 1,
            "state": FRESH,
            "num_vertices": entry.graph.num_vertices,
            "num_edges": entry.graph.num_edges,
            "num_communities": 1,
            "pending_updates": 0,
        }

    def test_nbytes_counts_all_arrays(self):
        entry = make_entry("a")
        g = entry.graph
        assert entry.nbytes >= (g.offsets.nbytes + g.targets.nbytes
                                + g.weights.nbytes
                                + entry.membership.nbytes)

    def test_stats_document(self):
        store = PartitionStore(budget_bytes=12345)
        store.put(make_entry("a"))
        s = store.stats()
        assert s["entries"] == 1
        assert s["budget_bytes"] == 12345
        assert s["bytes"] == store.total_bytes
