"""Tests for the content hashes keying the partition store."""

import numpy as np

from repro.core.config import LeidenConfig
from repro.dynamic.batch import EdgeBatch, apply_batch
from repro.service.fingerprint import (
    config_fingerprint,
    graph_fingerprint,
    membership_fingerprint,
    partition_key,
)
from tests.conftest import two_cliques_graph


class TestGraphFingerprint:
    def test_same_content_same_hash(self):
        assert (graph_fingerprint(two_cliques_graph())
                == graph_fingerprint(two_cliques_graph()))

    def test_different_content_different_hash(self, two_cliques):
        other = apply_batch(two_cliques,
                            EdgeBatch.from_edges([(0, 7)]))
        assert graph_fingerprint(two_cliques) != graph_fingerprint(other)

    def test_cached_on_graph(self, two_cliques):
        assert two_cliques.fingerprint() is two_cliques.fingerprint()

    def test_holey_graph_hashes_compacted(self):
        """A holey CSR hashes its compacted form, so content equality
        holds across storage layouts (the digest ignores row slack)."""
        from repro.graph.csr import CSRGraph

        dense = CSRGraph([0, 1, 2], [1, 0], [1.0, 1.0])
        holey = CSRGraph([0, 2, 4], [1, 0, 0, 0], [1.0, 9.0, 1.0, 9.0],
                         degrees=[1, 1])
        assert holey.is_holey
        assert graph_fingerprint(holey) == graph_fingerprint(dense)


class TestConfigFingerprint:
    def test_default_equals_none(self):
        assert config_fingerprint(None) == config_fingerprint(LeidenConfig())

    def test_field_sensitivity(self):
        assert (config_fingerprint(LeidenConfig(seed=1))
                != config_fingerprint(LeidenConfig(seed=2)))


class TestPartitionKey:
    def test_composed(self, two_cliques):
        key = partition_key(two_cliques, LeidenConfig(seed=3))
        assert key.startswith(graph_fingerprint(two_cliques) + ":")
        assert key.endswith(config_fingerprint(LeidenConfig(seed=3)))

    def test_config_distinguishes(self, two_cliques):
        assert (partition_key(two_cliques, LeidenConfig(seed=1))
                != partition_key(two_cliques, LeidenConfig(seed=2)))


class TestMembershipFingerprint:
    def test_content_hash(self):
        a = membership_fingerprint(np.array([0, 0, 1, 1]))
        b = membership_fingerprint([0, 0, 1, 1])
        c = membership_fingerprint([0, 1, 1, 0])
        assert a == b
        assert a != c
