"""Tests for the incremental update strategies and driver."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.sbm import planted_partition
from repro.dynamic import (
    APPROACHES,
    EdgeBatch,
    affected_vertices,
    dynamic_leiden,
)
from repro.dynamic.batch import random_batch
from repro.errors import ConfigError
from repro.metrics.comparison import adjusted_rand_index
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import two_cliques_graph


@pytest.fixture(scope="module")
def community_graph():
    g, planted = planted_partition(8, 40, intra_degree=12, inter_degree=2,
                                   seed=3)
    base = leiden(g, LeidenConfig(seed=3))
    return g, base, planted


class TestAffectedVertices:
    def test_naive_marks_all(self, community_graph):
        g, base, _ = community_graph
        b = EdgeBatch.from_edges([(0, 1)])
        mask = affected_vertices(g, base.membership, b, approach="naive")
        assert mask.all()

    def test_frontier_marks_endpoints_only(self, community_graph):
        g, base, _ = community_graph
        b = EdgeBatch.from_edges([(0, 100)])
        mask = affected_vertices(g, base.membership, b, approach="frontier")
        assert mask[0] and mask[100]
        assert mask.sum() == 2

    def test_delta_screening_widens(self, community_graph):
        g, base, _ = community_graph
        b = EdgeBatch.from_edges([(0, 100)])
        frontier = affected_vertices(g, base.membership, b,
                                     approach="frontier")
        ds = affected_vertices(g, base.membership, b,
                               approach="delta-screening")
        assert ds.sum() > frontier.sum()
        # the destination community is fully marked
        C = base.membership
        assert ds[C == C[100]].all()

    def test_intra_deletion_marks_community(self, community_graph):
        g, base, _ = community_graph
        C = base.membership
        # pick an intra-community edge
        src, dst, _ = g.to_coo()
        same = (C[src] == C[dst]) & (src < dst)
        u, v = int(src[same][0]), int(dst[same][0])
        b = EdgeBatch.from_edges(deletions=[(u, v)])
        mask = affected_vertices(g, C, b, approach="delta-screening")
        assert mask[C == C[u]].all()

    def test_unknown_approach(self, community_graph):
        g, base, _ = community_graph
        with pytest.raises(ConfigError):
            affected_vertices(g, base.membership, EdgeBatch.from_edges(),
                              approach="psychic")


class TestDynamicLeiden:
    @pytest.mark.parametrize("approach", APPROACHES)
    def test_tracks_static_quality(self, community_graph, approach):
        g, base, _ = community_graph
        batch = random_batch(g, num_insertions=40, num_deletions=40, seed=9)
        dyn = dynamic_leiden(g, base.membership, batch, approach=approach)
        static = leiden(dyn.graph, LeidenConfig(seed=3))
        q_dyn = modularity(dyn.graph, dyn.membership)
        q_static = modularity(dyn.graph, static.membership)
        assert q_dyn > q_static - 0.02, approach

    @pytest.mark.parametrize("approach", APPROACHES)
    def test_connectivity_guarantee_kept(self, community_graph, approach):
        g, base, _ = community_graph
        batch = random_batch(g, num_insertions=30, num_deletions=30, seed=4)
        dyn = dynamic_leiden(g, base.membership, batch, approach=approach)
        rep = disconnected_communities(dyn.graph, dyn.membership)
        assert rep.num_disconnected == 0, approach

    def test_affected_fractions_ordered(self, community_graph):
        g, base, _ = community_graph
        batch = random_batch(g, num_insertions=10, num_deletions=5, seed=7)
        fracs = {
            a: dynamic_leiden(g, base.membership, batch,
                              approach=a).affected_fraction
            for a in APPROACHES
        }
        assert fracs["naive"] == 1.0
        assert fracs["frontier"] <= fracs["delta-screening"] <= 1.0

    def test_small_change_keeps_partition(self, community_graph):
        """One extra intra-community edge must not reshuffle communities."""
        g, base, planted = community_graph
        C = base.membership
        members = np.flatnonzero(C == C[0])
        batch = EdgeBatch.from_edges([(int(members[0]), int(members[1]))])
        dyn = dynamic_leiden(g, C, batch, approach="frontier")
        assert adjusted_rand_index(dyn.membership, C) > 0.95

    def test_bridge_deletion_splits(self):
        g = two_cliques_graph()
        base = leiden(g)
        batch = EdgeBatch.from_edges(deletions=[(0, 5)])
        dyn = dynamic_leiden(g, base.membership, batch,
                             approach="delta-screening")
        assert dyn.num_communities == 2
        assert dyn.graph.num_edges == g.num_edges - 2

    def test_vertex_growth(self, community_graph):
        g, base, _ = community_graph
        new_v = g.num_vertices + 2
        batch = EdgeBatch.from_edges([(0, new_v)])
        dyn = dynamic_leiden(g, base.membership, batch, approach="frontier")
        assert dyn.graph.num_vertices == new_v + 1
        assert dyn.membership.shape[0] == new_v + 1

    def test_frontier_cheaper_than_naive(self, community_graph):
        """The point of DF: far less work for a small batch."""
        g, base, _ = community_graph
        batch = random_batch(g, num_insertions=5, seed=11)
        naive = dynamic_leiden(g, base.membership, batch, approach="naive")
        frontier = dynamic_leiden(g, base.membership, batch,
                                  approach="frontier")
        w_naive = naive.result.ledger.total_work
        w_frontier = frontier.result.ledger.total_work
        assert w_frontier < w_naive
