"""Tests for edge batches and their application."""

import numpy as np
import pytest

from repro.dynamic.batch import EdgeBatch, apply_batch, random_batch
from repro.errors import GraphStructureError
from repro.graph.builder import build_csr_from_edges
from repro.graph.validate import validate_csr


class TestEdgeBatch:
    def test_from_edges(self):
        b = EdgeBatch.from_edges([(0, 1), (2, 3)], [(4, 5)])
        assert b.num_insertions == 2
        assert b.num_deletions == 1
        assert b.touched_vertices().tolist() == [0, 1, 2, 3, 4, 5]

    def test_empty(self):
        b = EdgeBatch.from_edges()
        assert b.num_insertions == 0
        assert b.num_deletions == 0
        assert b.touched_vertices().shape == (0,)

    def test_weights(self):
        b = EdgeBatch.from_edges([(0, 1)], insert_weights=[2.5])
        assert b.insert_weights.tolist() == [2.5]

    def test_weight_length_checked(self):
        with pytest.raises(GraphStructureError):
            EdgeBatch.from_edges([(0, 1)], insert_weights=[1.0, 2.0])

    def test_bad_shape(self):
        with pytest.raises(GraphStructureError):
            EdgeBatch.from_edges([(0, 1, 2)])


class TestApplyBatch:
    def test_insert_edge(self):
        g = build_csr_from_edges([0], [1], num_vertices=3)
        b = EdgeBatch.from_edges([(1, 2)])
        g2 = apply_batch(g, b)
        assert g2.num_edges == 4
        assert g2.neighbors(2).tolist() == [1]
        validate_csr(g2)

    def test_delete_edge_both_directions(self, two_cliques):
        b = EdgeBatch.from_edges(deletions=[(0, 5)])  # the bridge
        g2 = apply_batch(two_cliques, b)
        assert g2.num_edges == two_cliques.num_edges - 2
        validate_csr(g2)

    def test_delete_direction_agnostic(self, two_cliques):
        a = apply_batch(two_cliques, EdgeBatch.from_edges(deletions=[(0, 5)]))
        b = apply_batch(two_cliques, EdgeBatch.from_edges(deletions=[(5, 0)]))
        assert a == b

    def test_insert_coalesces_with_existing(self):
        g = build_csr_from_edges([0], [1])
        g2 = apply_batch(g, EdgeBatch.from_edges([(0, 1)],
                                                 insert_weights=[2.0]))
        assert g2.num_edges == 2
        assert g2.edge_weights(0).tolist() == [3.0]

    def test_insert_grows_vertex_set(self):
        g = build_csr_from_edges([0], [1])
        g2 = apply_batch(g, EdgeBatch.from_edges([(1, 5)]))
        assert g2.num_vertices == 6

    def test_self_loop_insert(self):
        g = build_csr_from_edges([0], [1])
        g2 = apply_batch(g, EdgeBatch.from_edges([(0, 0)]))
        assert g2.neighbors(0).tolist() == [0, 1]

    def test_delete_nonexistent_noop(self, two_cliques):
        g2 = apply_batch(two_cliques, EdgeBatch.from_edges(deletions=[(0, 9)]))
        assert g2 == two_cliques

    def test_empty_batch_identity(self, two_cliques):
        assert apply_batch(two_cliques, EdgeBatch.from_edges()) == two_cliques

    def test_insert_and_delete_same_pair(self):
        """Deletions apply first, so an insert of a deleted pair survives
        — the edge ends up present with the batch's weight only."""
        g = build_csr_from_edges([0], [1], [4.0], num_vertices=3)
        b = EdgeBatch.from_edges([(0, 1)], deletions=[(0, 1)],
                                 insert_weights=[1.5])
        g2 = apply_batch(g, b)
        assert g2.neighbors(0).tolist() == [1]
        assert g2.edge_weights(0).tolist() == [1.5]
        validate_csr(g2)

    def test_insert_and_delete_same_pair_reversed_direction(self):
        g = build_csr_from_edges([0], [1], [4.0], num_vertices=2)
        b = EdgeBatch.from_edges([(0, 1)], deletions=[(1, 0)],
                                 insert_weights=[2.0])
        g2 = apply_batch(g, b)
        assert g2.edge_weights(0).tolist() == [2.0]

    def test_self_loop_insertions_coalesce(self):
        """Self-loops are not symmetrized (no double edge) and coalesce
        with an existing loop on the same vertex."""
        g = build_csr_from_edges([0, 0], [0, 1], [1.0, 1.0],
                                 symmetrize=False, num_vertices=2)
        b = EdgeBatch.from_edges([(0, 0), (0, 0)],
                                 insert_weights=[2.0, 3.0])
        g2 = apply_batch(g, b)
        assert g2.neighbors(0).tolist() == [0, 1]
        loop_weight = g2.edge_weights(0)[g2.neighbors(0).tolist().index(0)]
        assert loop_weight == 6.0

    def test_all_deletion_batch_empties_adjacency(self, star8):
        """Deleting every edge of the hub leaves an edgeless graph with
        the vertex set intact."""
        dels = [(0, v) for v in range(1, 8)]
        g2 = apply_batch(star8, EdgeBatch.from_edges(deletions=dels))
        assert g2.num_vertices == star8.num_vertices
        assert g2.num_edges == 0
        for v in range(g2.num_vertices):
            assert g2.neighbors(v).shape == (0,)
        validate_csr(g2)


class TestRandomBatch:
    def test_sizes(self, two_cliques):
        b = random_batch(two_cliques, num_insertions=5, num_deletions=3,
                         seed=1)
        assert 0 < b.num_insertions <= 5
        assert b.num_deletions == 3

    def test_deletions_are_existing_edges(self, two_cliques):
        b = random_batch(two_cliques, num_deletions=4, seed=2)
        g2 = apply_batch(two_cliques, b)
        assert g2.num_edges == two_cliques.num_edges - 2 * b.num_deletions

    def test_deterministic(self, two_cliques):
        a = random_batch(two_cliques, num_insertions=3, seed=5)
        b = random_batch(two_cliques, num_insertions=3, seed=5)
        assert np.array_equal(a.insert_sources, b.insert_sources)
