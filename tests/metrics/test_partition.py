"""Tests for partition utilities."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.metrics.partition import (
    check_membership,
    community_sizes,
    count_communities,
    groups_from_membership,
    membership_from_groups,
    renumber_membership,
)


class TestCheckMembership:
    def test_accepts_valid(self):
        C = check_membership([0, 1, 0], 3)
        assert C.dtype == np.int32

    def test_rejects_length(self):
        with pytest.raises(GraphStructureError):
            check_membership([0, 1], 3)

    def test_rejects_negative(self):
        with pytest.raises(GraphStructureError):
            check_membership([0, -1], 2)


class TestCounts:
    def test_count_communities(self):
        assert count_communities([5, 5, 9, 5]) == 2
        assert count_communities([]) == 0

    def test_community_sizes_dense(self):
        sizes = community_sizes([0, 0, 1, 2, 2, 2])
        assert sizes.tolist() == [2, 1, 3]

    def test_community_sizes_sparse_ids(self):
        sizes = community_sizes([4, 4, 9])
        assert sizes.tolist() == [2, 1]

    def test_community_sizes_empty(self):
        assert community_sizes([]).shape == (0,)


class TestRenumber:
    def test_compacts(self):
        ren, old = renumber_membership([9, 3, 9, 7])
        assert old.tolist() == [3, 7, 9]
        assert ren.tolist() == [2, 0, 2, 1]

    def test_identity_when_dense(self):
        ren, old = renumber_membership([0, 1, 2])
        assert ren.tolist() == [0, 1, 2]

    def test_roundtrip(self):
        C = np.array([5, 2, 5, 8, 2], dtype=np.int32)
        ren, old = renumber_membership(C)
        assert np.array_equal(old[ren], C)

    def test_deterministic(self):
        a, _ = renumber_membership([3, 1, 3])
        b, _ = renumber_membership([3, 1, 3])
        assert np.array_equal(a, b)


class TestGroups:
    def test_groups_roundtrip(self):
        C = np.array([1, 0, 1, 2], dtype=np.int32)
        groups = groups_from_membership(C)
        assert groups == {0: [1], 1: [0, 2], 2: [3]}
        back = membership_from_groups(groups, 4)
        assert np.array_equal(back, C)

    def test_membership_from_groups_rejects_overlap(self):
        with pytest.raises(GraphStructureError):
            membership_from_groups({0: [0], 1: [0]}, 1)

    def test_membership_from_groups_rejects_gap(self):
        with pytest.raises(GraphStructureError):
            membership_from_groups({0: [0]}, 2)
