"""Tests for NMI / ARI partition comparison."""

import numpy as np
import pytest

from repro.metrics.comparison import (
    adjusted_rand_index,
    contingency_counts,
    normalized_mutual_information,
)


class TestContingency:
    def test_basic(self):
        counts, a_idx, b_idx, a_tot, b_tot = contingency_counts(
            [0, 0, 1, 1], [0, 1, 1, 1]
        )
        table = {(int(a), int(b)): int(c)
                 for a, b, c in zip(a_idx, b_idx, counts)}
        assert table == {(0, 0): 1, (0, 1): 1, (1, 1): 2}
        assert a_tot.tolist() == [2, 2]
        assert b_tot.tolist() == [1, 3]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency_counts([0], [0, 1])

    def test_arbitrary_labels(self):
        counts, *_ = contingency_counts([9, 9, 42], [7, 7, 3])
        assert sorted(counts.tolist()) == [1, 2]


class TestNMI:
    def test_identical_partitions(self):
        assert normalized_mutual_information([0, 0, 1, 1], [5, 5, 2, 2]) == \
            pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert normalized_mutual_information(a, b) < 0.02

    def test_constant_labelings(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    def test_symmetry(self):
        a = [0, 0, 1, 2, 2]
        b = [1, 1, 1, 0, 2]
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_range(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            a = rng.integers(0, 5, 100)
            b = rng.integers(0, 3, 100)
            v = normalized_mutual_information(a, b)
            assert 0.0 <= v <= 1.0


class TestARI:
    def test_identical(self):
        assert adjusted_rand_index([0, 1, 1], [4, 2, 2]) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_matches_sklearn_formula_example(self):
        # Known value: ARI([0,0,1,2],[0,0,1,1]) = 0.571428...
        assert adjusted_rand_index([0, 0, 1, 2], [0, 0, 1, 1]) == \
            pytest.approx(0.5714285714, abs=1e-6)

    def test_symmetry(self):
        a = [0, 0, 1, 2, 2, 1]
        b = [1, 1, 0, 0, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )
