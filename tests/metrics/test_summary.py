"""Tests for per-community structural summaries."""

import numpy as np
import pytest

from repro.metrics.modularity import modularity
from repro.metrics.summary import summarize_partition
from repro.types import VERTEX_DTYPE
from tests.conftest import random_graph


class TestTwoCliques:
    @pytest.fixture
    def summary(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        return summarize_partition(two_cliques, C)

    def test_counts(self, summary):
        assert summary.num_communities == 2
        assert [c.size for c in summary.communities] == [5, 5]

    def test_internal_weight(self, summary):
        # each clique has 10 undirected internal edges
        assert [c.internal_weight for c in summary.communities] == \
            [10.0, 10.0]

    def test_cut_weight(self, summary):
        # one bridge edge crosses, counted once per side
        assert [c.cut_weight for c in summary.communities] == [1.0, 1.0]

    def test_volume(self, summary, two_cliques):
        K = two_cliques.vertex_weights()
        assert summary.communities[0].volume == pytest.approx(K[:5].sum())

    def test_internal_density(self, summary):
        # clique of 5: all 10 pairs present
        assert summary.communities[0].internal_density == pytest.approx(1.0)

    def test_conductance(self, summary, two_cliques):
        c = summary.communities[0]
        assert c.conductance == pytest.approx(
            1.0 / min(c.volume, two_cliques.total_weight - c.volume)
        )

    def test_coverage(self, summary, two_cliques):
        # all but the bridge (stored twice) is internal
        expect = (two_cliques.total_weight - 2.0) / two_cliques.total_weight
        assert summary.coverage == pytest.approx(expect)

    def test_modularity_matches_metric(self, summary, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=VERTEX_DTYPE)
        assert summary.modularity == pytest.approx(
            modularity(two_cliques, C)
        )


class TestAggregates:
    def test_sizes_and_percentiles(self, small_random):
        rng = np.random.default_rng(0)
        C = rng.integers(0, 5, small_random.num_vertices)
        s = summarize_partition(small_random, C)
        assert s.sizes().sum() == small_random.num_vertices
        pct = s.size_percentiles()
        assert pct[0] <= pct[50] <= pct[100]

    def test_worst_conductance_ordering(self, small_random):
        rng = np.random.default_rng(1)
        C = rng.integers(0, 6, small_random.num_vertices)
        s = summarize_partition(small_random, C)
        worst = s.worst_conductance(3)
        conds = [c.conductance for c in worst]
        assert conds == sorted(conds, reverse=True)

    def test_internal_plus_cut_consistency(self):
        g = random_graph(n=50, avg_degree=6, seed=4, weighted=True)
        rng = np.random.default_rng(4)
        C = rng.integers(0, 4, g.num_vertices)
        s = summarize_partition(g, C)
        total = sum(2 * c.internal_weight + c.cut_weight
                    for c in s.communities)
        # loops counted once internally but stored once => adjust
        src, dst, wgt = g.to_coo()
        loops = float(wgt[src == dst].sum(dtype=np.float64))
        assert total == pytest.approx(g.total_weight + loops, rel=1e-5)

    def test_singleton_partition(self, two_cliques):
        C = np.arange(10, dtype=VERTEX_DTYPE)
        s = summarize_partition(two_cliques, C)
        assert all(c.internal_weight == 0 for c in s.communities)
        assert s.coverage == 0.0

    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        s = summarize_partition(empty_csr(0), np.empty(0, dtype=VERTEX_DTYPE))
        assert s.num_communities == 0
