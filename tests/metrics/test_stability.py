"""Tests for seed-stability analysis."""

import numpy as np
import pytest

from repro.core.louvain import louvain
from repro.datasets.sbm import planted_partition
from repro.metrics.stability import seed_stability
from tests.conftest import random_graph, two_cliques_graph


class TestSeedStability:
    def test_strong_structure_is_stable(self):
        g, _ = planted_partition(5, 30, intra_degree=14, inter_degree=1,
                                 seed=0)
        report = seed_stability(g, seeds=(1, 2, 3))
        assert report.mean_similarity > 0.95
        assert report.min_similarity > 0.9

    def test_similarity_matrix_shape(self):
        g = two_cliques_graph()
        report = seed_stability(g, seeds=(1, 2, 3, 4))
        assert report.similarity.shape == (4, 4)
        assert np.allclose(np.diag(report.similarity), 1.0)
        assert np.allclose(report.similarity, report.similarity.T)

    def test_perfectly_stable_graph(self):
        g = two_cliques_graph()
        report = seed_stability(g, seeds=(1, 2, 3))
        assert report.mean_similarity == pytest.approx(1.0)
        assert report.community_counts() == [2, 2, 2]

    def test_coassignment_confidence(self):
        g = two_cliques_graph()
        report = seed_stability(g, seeds=(1, 2, 3))
        assert report.coassignment_confidence(0, 1) == 1.0
        assert report.coassignment_confidence(0, 9) == 0.0

    def test_ari_metric(self):
        g = two_cliques_graph()
        report = seed_stability(g, metric="ari", seeds=(1, 2))
        assert report.metric == "ari"
        assert report.mean_similarity == pytest.approx(1.0)

    def test_unknown_metric(self):
        g = two_cliques_graph()
        with pytest.raises(ValueError):
            seed_stability(g, metric="f1")

    def test_alternative_algorithm(self):
        g = two_cliques_graph()
        report = seed_stability(g, algorithm=louvain, seeds=(1, 2))
        assert report.community_counts() == [2, 2]

    def test_weak_structure_less_stable_than_strong(self):
        strong, _ = planted_partition(4, 30, intra_degree=14,
                                      inter_degree=1, seed=1)
        weak = random_graph(n=120, avg_degree=6, seed=1)
        s_strong = seed_stability(strong, seeds=(1, 2, 3)).mean_similarity
        s_weak = seed_stability(weak, seeds=(1, 2, 3)).mean_similarity
        assert s_strong >= s_weak

    def test_single_seed_degenerate(self):
        g = two_cliques_graph()
        report = seed_stability(g, seeds=(7,))
        assert report.mean_similarity == 1.0
