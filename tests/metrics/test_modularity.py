"""Tests for modularity and delta-modularity, with networkx as oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import empty_csr
from repro.metrics.modularity import (
    community_weights,
    delta_modularity,
    intra_community_weight,
    modularity,
)
from repro.metrics.partition import groups_from_membership
from tests.conftest import random_graph


def nx_modularity(graph, membership, resolution=1.0):
    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    src, dst, wgt = graph.to_coo()
    for u, v, w in zip(src.tolist(), dst.tolist(), wgt.tolist()):
        if G.has_edge(u, v):
            continue
        G.add_edge(u, v, weight=w)
    groups = [set(m) for m in groups_from_membership(membership).values()]
    return nx.community.modularity(G, groups, resolution=resolution)


class TestModularity:
    def test_single_community_value(self, two_cliques):
        # One community: Q = sigma/2m - 1 = 0 (all edges internal).
        C = np.zeros(10, dtype=np.int32)
        assert modularity(two_cliques, C) == pytest.approx(0.0)

    def test_two_cliques_partition(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=np.int32)
        q = modularity(two_cliques, C)
        assert q == pytest.approx(nx_modularity(two_cliques, C), abs=1e-9)
        assert q > 0.4

    def test_singletons_negative(self, two_cliques):
        C = np.arange(10, dtype=np.int32)
        q = modularity(two_cliques, C)
        assert q < 0
        assert q == pytest.approx(nx_modularity(two_cliques, C), abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_random(self, seed):
        g = random_graph(n=40, avg_degree=5, seed=seed, weighted=True)
        rng = np.random.default_rng(seed)
        C = rng.integers(0, 6, g.num_vertices).astype(np.int32)
        assert modularity(g, C) == pytest.approx(
            nx_modularity(g, C), abs=1e-6
        )

    def test_resolution_parameter(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=np.int32)
        q2 = modularity(two_cliques, C, resolution=2.0)
        assert q2 == pytest.approx(
            nx_modularity(two_cliques, C, resolution=2.0), abs=1e-9
        )
        assert q2 < modularity(two_cliques, C)

    def test_membership_length_checked(self, two_cliques):
        with pytest.raises(GraphStructureError):
            modularity(two_cliques, np.zeros(3, dtype=np.int32))

    def test_empty_graph(self):
        assert modularity(empty_csr(0), np.empty(0, dtype=np.int32)) == 0.0

    def test_edgeless_graph(self):
        assert modularity(empty_csr(4), np.zeros(4, dtype=np.int32)) == 0.0

    def test_self_loops_counted_once(self):
        g = build_csr_from_edges([0, 0], [0, 1])
        C = np.zeros(2, dtype=np.int32)
        # sigma = loop(1) + edge both ways(2) = 3; 2m = 3 => Q = 0.
        assert modularity(g, C) == pytest.approx(0.0)


class TestHelpers:
    def test_community_weights(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=np.int32)
        Sigma = community_weights(two_cliques, C)
        K = two_cliques.vertex_weights()
        assert Sigma[0] == pytest.approx(K[:5].sum())
        assert Sigma[1] == pytest.approx(K[5:].sum())

    def test_intra_weight(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=np.int32)
        # everything except the bridge (stored twice) is internal
        assert intra_community_weight(two_cliques, C) == pytest.approx(
            two_cliques.total_weight - 2.0
        )


class TestDeltaModularity:
    def _brute_force_dq(self, graph, C, i, c):
        before = modularity(graph, C)
        C2 = C.copy()
        C2[i] = c
        return modularity(graph, C2) - before

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        g = random_graph(n=30, avg_degree=5, seed=seed, weighted=True)
        rng = np.random.default_rng(seed + 100)
        C = rng.integers(0, 5, g.num_vertices).astype(np.int32)
        K = g.vertex_weights()
        Sigma = community_weights(g, C)
        m = g.m
        for _ in range(10):
            i = int(rng.integers(0, g.num_vertices))
            c = int(rng.integers(0, 5))
            d = int(C[i])
            if c == d:
                continue
            dst, wgt = g.edges(i)
            notself = dst != i
            kic = float(wgt[notself][C[dst[notself]] == c].sum(dtype=np.float64))
            kid = float(wgt[notself][C[dst[notself]] == d].sum(dtype=np.float64))
            dq = delta_modularity(kic, kid, float(K[i]),
                                  float(Sigma[c]), float(Sigma[d]), m)
            assert dq == pytest.approx(
                self._brute_force_dq(g, C, i, c), abs=1e-9
            )

    def test_vectorized_matches_scalar(self):
        kic = np.array([1.0, 2.0])
        dq = delta_modularity(kic, 0.5, 2.0, 4.0, 3.0, 10.0)
        for k in range(2):
            assert dq[k] == pytest.approx(
                delta_modularity(float(kic[k]), 0.5, 2.0, 4.0, 3.0, 10.0)
            )
