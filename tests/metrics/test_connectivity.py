"""Tests for connected components and disconnected-community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import empty_csr
from repro.metrics.connectivity import (
    connected_components,
    count_components,
    disconnected_communities,
    is_community_connected,
)
from tests.conftest import random_graph


class TestConnectedComponents:
    def test_path_single_component(self, path10):
        assert count_components(path10) == 1

    def test_two_components(self):
        g = build_csr_from_edges([0, 2], [1, 3])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert count_components(g) == 2

    def test_isolated_vertices_count(self):
        g = build_csr_from_edges([0], [1], num_vertices=4)
        assert count_components(g) == 3

    def test_empty_graph(self):
        assert count_components(empty_csr(0)) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = random_graph(n=50, avg_degree=2.0, seed=seed)
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        src, dst, _ = g.to_coo()
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        assert count_components(g) == nx.number_connected_components(G)

    def test_self_loop_single_component(self):
        g = build_csr_from_edges([0], [0])
        assert count_components(g) == 1


class TestDisconnectedCommunities:
    def test_connected_partition_clean(self, two_cliques):
        C = np.array([0] * 5 + [1] * 5, dtype=np.int32)
        report = disconnected_communities(two_cliques, C)
        assert report.num_communities == 2
        assert report.num_disconnected == 0
        assert report.fraction == 0.0

    def test_detects_split_community(self, two_cliques):
        # Community 1 = {0, 7}: no edge between them.  Community 0 = the
        # rest: pulling out vertex 0 removes the bridge, splitting it too.
        C = np.zeros(10, dtype=np.int32)
        C[0] = 1
        C[7] = 1
        report = disconnected_communities(two_cliques, C)
        assert report.num_disconnected == 2
        assert report.disconnected_ids.tolist() == [0, 1]

    def test_detects_only_the_split_one(self, two_cliques):
        # Moving just vertex 7 out: community 0 keeps the bridge and
        # stays connected; {7} alone is a connected singleton.
        C = np.zeros(10, dtype=np.int32)
        C[7] = 1
        report = disconnected_communities(two_cliques, C)
        assert report.num_disconnected == 0
        # But {2, 7} (no edge: different cliques, neither on the bridge)
        # is disconnected.
        C[2] = 1
        report = disconnected_communities(two_cliques, C)
        assert report.num_disconnected == 1
        assert report.disconnected_ids.tolist() == [1]

    def test_bridge_keeps_connected(self, two_cliques):
        C = np.zeros(10, dtype=np.int32)
        report = disconnected_communities(two_cliques, C)
        assert report.num_disconnected == 0

    def test_fraction(self):
        g = build_csr_from_edges([0, 2, 4], [1, 3, 5])
        C = np.array([0, 0, 1, 1, 1, 1], dtype=np.int32)
        # community 1 = {2,3,4,5} but edges only 2-3 and 4-5 => disconnected
        report = disconnected_communities(g, C)
        assert report.num_disconnected == 1
        assert report.fraction == pytest.approx(0.5)

    def test_is_community_connected(self, two_cliques):
        C = np.zeros(10, dtype=np.int32)
        C[2] = 1
        C[7] = 1
        assert is_community_connected(two_cliques, C, 0)
        assert not is_community_connected(two_cliques, C, 1)

    def test_singleton_communities_connected(self, path10):
        C = np.arange(10, dtype=np.int32)
        report = disconnected_communities(path10, C)
        assert report.num_disconnected == 0

    def test_empty_graph(self):
        report = disconnected_communities(empty_csr(0), np.empty(0, dtype=np.int32))
        assert report.num_communities == 0
        assert report.fraction == 0.0

    def test_noncontiguous_community_ids(self, path10):
        C = np.full(10, 7, dtype=np.int32)
        C[:5] = 42
        report = disconnected_communities(path10, C)
        assert report.num_communities == 2
        assert report.num_disconnected == 0
