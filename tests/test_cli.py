"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io_edgelist import write_edgelist
from tests.conftest import two_cliques_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edgelist(two_cliques_graph(), path)
    return path


class TestCli:
    def test_list_datasets(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "asia_osm" in out and "sk-2005" in out

    def test_run_on_file(self, graph_file, capsys):
        assert main([str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "communities: 2" in out
        assert "modularity:" in out

    def test_run_on_dataset_name(self, capsys):
        assert main(["asia_osm", "--max-passes", "2"]) == 0
        assert "vertices: 12000" in capsys.readouterr().out

    def test_louvain(self, graph_file, capsys):
        assert main([str(graph_file), "--algorithm", "louvain"]) == 0
        assert "louvain" in capsys.readouterr().out

    def test_output_membership(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "members.txt"
        assert main([str(graph_file), "--output", str(out_file)]) == 0
        lines = out_file.read_text().splitlines()
        assert len(lines) == 10
        assert set(lines) == {"0", "1"}

    def test_check_connectivity(self, graph_file, capsys):
        assert main([str(graph_file), "--check-connectivity"]) == 0
        assert "disconnected communities: 0" in capsys.readouterr().out

    def test_variant_and_refinement_flags(self, graph_file, capsys):
        assert main([str(graph_file), "--variant", "heavy",
                     "--refinement", "random", "--seed", "3"]) == 0
        assert "random, heavy" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["/nonexistent/file.txt"])

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quality_cpm(self, graph_file, capsys):
        assert main([str(graph_file), "--quality", "cpm",
                     "--resolution", "0.3"]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_engine_loop(self, graph_file, capsys):
        assert main([str(graph_file), "--engine", "loop"]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_summary_flag(self, graph_file, capsys):
        assert main([str(graph_file), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "community sizes" in out

    def test_mtx_input(self, tmp_path, capsys):
        from repro.graph.io_mtx import write_mtx
        p = tmp_path / "g.mtx"
        write_mtx(two_cliques_graph(), p)
        assert main([str(p)]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_metis_input(self, tmp_path, capsys):
        from repro.graph.io_metis import write_metis
        p = tmp_path / "g.graph"
        write_metis(two_cliques_graph(), p)
        assert main([str(p)]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_run_subcommand_alias(self, graph_file, capsys):
        """`repro run <input>` behaves exactly like the bare form."""
        assert main(["run", str(graph_file)]) == 0
        assert "communities: 2" in capsys.readouterr().out


class TestTraceSubcommand:
    def test_trace_to_stdout(self, graph_file, capsys):
        assert main(["trace", str(graph_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.trace/2"
        assert doc["spans"][0]["name"] == "leiden"
        pass_spans = [c for c in doc["spans"][0]["children"]
                      if c["name"] == "pass"]
        assert pass_spans
        phase_names = {c["name"] for c in pass_spans[0]["children"]}
        assert {"local_move", "refine", "aggregate"} <= phase_names
        assert doc["counters"]["barriers"] > 0
        assert doc["meta"]["metrics"]["num_communities"] == 2

    def test_trace_to_file_compact(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", str(graph_file), "--compact",
                     "--output", str(out_file)]) == 0
        assert "trace written to" in capsys.readouterr().out
        text = out_file.read_text()
        assert len(text.strip().splitlines()) == 1  # compact = one line
        assert json.loads(text)["schema"] == "repro.trace/2"

    def test_trace_dataset_name(self, capsys):
        assert main(["trace", "asia_osm", "--max-passes", "2",
                     "--seed", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["experiment"] == "asia_osm"
        assert doc["derived"]["pruning_hit_rate"] >= 0.0


class TestBenchSubcommand:
    def test_bench_check_passes_on_clean_tree(self, capsys):
        assert main(["bench", "--check"]) == 0
        out = capsys.readouterr().out
        assert "baselines within thresholds" in out
        assert "FAIL" not in out

    def test_bench_check_custom_dir(self, tmp_path, capsys):
        """--baselines pointing at an empty dir exits 2 (no baselines)."""
        assert main(["bench", "--check",
                     "--baselines", str(tmp_path)]) == 2
        assert "no baselines" in capsys.readouterr().out

    def test_bench_update_then_check_roundtrip(self, tmp_path, capsys):
        assert main(["bench", "--update-baselines",
                     "--baselines", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recorded baseline" in out
        assert "recorded service baseline" in out
        assert "recorded metrics baseline" in out
        assert "recorded reorder baseline" in out
        assert "recorded fleet baseline" in out
        assert "recorded reqtrace baseline" in out
        assert "recorded memory baseline" in out
        assert main(["bench", "--check",
                     "--baselines", str(tmp_path)]) == 0
        assert "10/10 baselines within thresholds" in capsys.readouterr().out

    def test_bench_trace_writes_bundle(self, tmp_path, capsys):
        out_file = tmp_path / "bundle.json"
        assert main(["bench", "--trace", str(out_file)]) == 0
        bundle = json.loads(out_file.read_text())
        assert bundle["schema"] == "repro.trace-bundle/1"
        assert set(bundle["experiments"]) == {
            "asia_osm", "uk-2002", "com-Orkut"
        }


class TestServeSubcommand:
    def test_serve_to_stdout(self, capsys):
        assert main(["serve", "--workload", "tiny", "--seed", "0"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.service-workload/1"
        assert doc["membership_matches_scratch"] == {"com-Orkut": True}
        assert doc["stats"]["counters"]["queries_served"] == 40

    def test_serve_deterministic_output_files(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["serve", "--workload", "tiny", "--seed", "0",
                     "--no-verify", "--output", str(a)]) == 0
        assert main(["serve", "--workload", "tiny", "--seed", "0",
                     "--no-verify", "--output", str(b)]) == 0
        assert "stats written to" in capsys.readouterr().out
        assert a.read_text() == b.read_text()

    def test_serve_trace_output(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        trace = tmp_path / "trace.json"
        assert main(["serve", "--workload", "tiny", "--seed", "0",
                     "--no-verify", "--compact",
                     "--output", str(out), "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == "repro.trace/2"
        span_names = {s["name"] for s in doc["spans"]}
        assert "service.detect" in span_names
        assert "service_request_seconds_p50" in doc["derived"]

    def test_serve_no_coalesce(self, capsys):
        assert main(["serve", "--workload", "tiny", "--seed", "0",
                     "--no-coalesce", "--no-verify"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["counters"]["updates_coalesced"] == 0

    def test_serve_metrics_output(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        metrics = tmp_path / "metrics.json"
        assert main(["serve", "--workload", "tiny", "--seed", "0",
                     "--no-verify", "--output", str(out),
                     "--metrics", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro.metrics/1"
        assert doc["health"]["schema"] == "repro.health/1"
        assert doc["health"]["state"] in ("OK", "WARN", "PAGE")
        assert "service_requests_total" in doc["families"]
        # The stats document grows its health block too.
        stats = json.loads(out.read_text())
        assert stats["stats"]["health"]["schema"] == "repro.health/1"

    def test_serve_metrics_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for p in paths:
            assert main(["serve", "--workload", "tiny", "--seed", "0",
                         "--no-verify", "--output",
                         str(tmp_path / "stats.json"),
                         "--metrics", str(p)]) == 0
        assert paths[0].read_text() == paths[1].read_text()


class TestMemSubcommand:
    def test_mem_json_to_stdout(self, graph_file, capsys):
        assert main(["mem", str(graph_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.memory/1"
        assert doc["logical"]["peak_bytes"] > 0
        assert "csr" in doc["logical"]["components"]
        assert "workspace" in doc["logical"]["components"]

    def test_mem_double_run_byte_identical(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["mem", "asia_osm", "--output", str(a)]) == 0
        assert main(["mem", "asia_osm", "--output", str(b)]) == 0
        assert "memory report written to" in capsys.readouterr().out
        assert a.read_text() == b.read_text()

    def test_mem_chrome_export_validates(self, graph_file, tmp_path,
                                         capsys):
        from repro.observability.profiler import validate_chrome_trace

        chrome = tmp_path / "mem_chrome.json"
        assert main(["mem", str(graph_file), "--compact",
                     "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        stats = validate_chrome_trace(doc)
        assert stats["events"] > 0
        assert any(e.get("name") == "mem_live_bytes"
                   for e in doc["traceEvents"])

    def test_mem_rss_line_is_informational(self, graph_file, capsys):
        assert main(["mem", str(graph_file), "--rss", "--compact"]) == 0
        out = capsys.readouterr().out
        assert "rss peak:" in out
        assert "not gated" in out
        # The report document itself never carries RSS fields.
        doc = json.loads(out.splitlines()[0])
        assert set(doc) == {"schema", "meta", "logical", "physical",
                            "events"}
        assert "rss" not in json.dumps(doc["logical"])

    def test_mem_worker_count_invariant_logical_section(self, tmp_path,
                                                        capsys):
        docs = []
        for w in ("1", "2"):
            p = tmp_path / f"mem_{w}.json"
            assert main(["mem", "asia_osm", "--engine", "process",
                         "--workers", w, "--output", str(p)]) == 0
            docs.append(json.loads(p.read_text()))
        capsys.readouterr()
        assert docs[0]["logical"] == docs[1]["logical"]

    def test_serve_mem_output(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for p in (a, b):
            assert main(["serve", "--workload", "tiny", "--seed", "0",
                         "--no-verify", "--output",
                         str(tmp_path / "stats.json"),
                         "--mem", str(p)]) == 0
        capsys.readouterr()
        assert a.read_text() == b.read_text()
        doc = json.loads(a.read_text())
        assert doc["schema"] == "repro.memory/1"
        assert doc["logical"]["components"]["store"]["allocs"] > 0

    def test_fleet_mem_output_merges_shards(self, tmp_path, capsys):
        mem = tmp_path / "fleet_mem.json"
        assert main(["fleet", "--profile", "tiny", "--seed", "0",
                     "--no-verify", "--output",
                     str(tmp_path / "stats.json"),
                     "--mem", str(mem)]) == 0
        capsys.readouterr()
        doc = json.loads(mem.read_text())
        assert doc["schema"] == "repro.memory/1"
        assert doc["meta"]["merged_shards"] >= 1
        assert set(doc["shards"])  # per-shard logical sections present


class TestMetricsSubcommand:
    def test_metrics_json_to_stdout(self, graph_file, capsys):
        assert main(["metrics", str(graph_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.metrics/1"
        assert doc["meta"]["num_communities"] == 2
        assert doc["families"]["leiden_passes_total"]["series"][0][
            "value"] >= 1
        assert "runtime_parallel_regions_total" in doc["families"]
        assert any(k.startswith("trace_") for k in doc["families"])

    def test_metrics_prometheus_output(self, graph_file, capsys):
        assert main(["metrics", str(graph_file), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE leiden_passes_total counter" in out
        from repro.observability.metrics import validate_prometheus

        report = validate_prometheus(out)
        assert report["families"] > 10

    def test_metrics_double_run_byte_identical(self, graph_file, tmp_path,
                                               capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["metrics", str(graph_file), "--output", str(a)]) == 0
        assert main(["metrics", str(graph_file), "--output", str(b)]) == 0
        assert "metrics written to" in capsys.readouterr().out
        assert a.read_text() == b.read_text()

    def test_metrics_dataset_name_compact(self, capsys):
        assert main(["metrics", "asia_osm", "--max-passes", "2",
                     "--compact"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1
        assert json.loads(out)["schema"] == "repro.metrics/1"


class TestProfileSubcommand:
    def test_profile_report_to_stdout(self, graph_file, capsys):
        assert main(["profile", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "per-phase attribution" in out
        assert "scheduling-policy attribution" in out
        assert "convergence monitor" in out

    def test_profile_chrome_export_is_valid_and_deterministic(
            self, graph_file, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["profile", str(graph_file), "--chrome", str(a),
                     "--compact"]) == 0
        assert main(["profile", str(graph_file), "--chrome", str(b),
                     "--compact"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        from repro.observability.profiler import validate_chrome_trace

        doc = json.loads(a.read_text())
        stats = validate_chrome_trace(doc)
        assert stats["named_lanes"] >= 8
        assert doc["otherData"]["schema"] == "repro.profile/1"

    def test_profile_report_to_file(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["profile", str(graph_file), "--threads", "4",
                     "--output", str(out_file)]) == 0
        assert "report written to" in capsys.readouterr().out
        assert "threads: 4" in out_file.read_text()

    def test_profile_dataset_name(self, capsys):
        assert main(["profile", "asia_osm", "--max-passes", "1",
                     "--seed", "1", "--top", "3"]) == 0
        assert "asia_osm" in capsys.readouterr().out


class TestTraceDiff:
    @staticmethod
    def _write_trace(path, graph_file, extra=()):
        assert main(["trace", str(graph_file), "--compact",
                     "--output", str(path), *extra]) == 0

    def test_diff_identical_traces_is_clean(self, graph_file, tmp_path,
                                            capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trace(a, graph_file)
        self._write_trace(b, graph_file)
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        assert "0 deterministic field(s) differ" in capsys.readouterr().out

    def test_diff_strict_flags_divergence(self, graph_file, tmp_path,
                                          capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_trace(a, graph_file)
        self._write_trace(b, graph_file, extra=["--max-passes", "1"])
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "[DIFF]" in out
        # --strict turns deterministic differences into exit code 1
        assert main(["trace", "--diff", str(a), str(b), "--strict"]) == 1

    def test_diff_missing_file_errors(self, tmp_path, graph_file):
        a = tmp_path / "a.json"
        self._write_trace(a, graph_file)
        with pytest.raises(SystemExit):
            main(["trace", "--diff", str(a), str(tmp_path / "nope.json")])

    def test_trace_without_input_or_diff_errors(self):
        with pytest.raises(SystemExit):
            main(["trace"])
