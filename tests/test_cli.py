"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io_edgelist import write_edgelist
from tests.conftest import two_cliques_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edgelist(two_cliques_graph(), path)
    return path


class TestCli:
    def test_list_datasets(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "asia_osm" in out and "sk-2005" in out

    def test_run_on_file(self, graph_file, capsys):
        assert main([str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "communities: 2" in out
        assert "modularity:" in out

    def test_run_on_dataset_name(self, capsys):
        assert main(["asia_osm", "--max-passes", "2"]) == 0
        assert "vertices: 12000" in capsys.readouterr().out

    def test_louvain(self, graph_file, capsys):
        assert main([str(graph_file), "--algorithm", "louvain"]) == 0
        assert "louvain" in capsys.readouterr().out

    def test_output_membership(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "members.txt"
        assert main([str(graph_file), "--output", str(out_file)]) == 0
        lines = out_file.read_text().splitlines()
        assert len(lines) == 10
        assert set(lines) == {"0", "1"}

    def test_check_connectivity(self, graph_file, capsys):
        assert main([str(graph_file), "--check-connectivity"]) == 0
        assert "disconnected communities: 0" in capsys.readouterr().out

    def test_variant_and_refinement_flags(self, graph_file, capsys):
        assert main([str(graph_file), "--variant", "heavy",
                     "--refinement", "random", "--seed", "3"]) == 0
        assert "random, heavy" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["/nonexistent/file.txt"])

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quality_cpm(self, graph_file, capsys):
        assert main([str(graph_file), "--quality", "cpm",
                     "--resolution", "0.3"]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_engine_loop(self, graph_file, capsys):
        assert main([str(graph_file), "--engine", "loop"]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_summary_flag(self, graph_file, capsys):
        assert main([str(graph_file), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "community sizes" in out

    def test_mtx_input(self, tmp_path, capsys):
        from repro.graph.io_mtx import write_mtx
        p = tmp_path / "g.mtx"
        write_mtx(two_cliques_graph(), p)
        assert main([str(p)]) == 0
        assert "communities: 2" in capsys.readouterr().out

    def test_metis_input(self, tmp_path, capsys):
        from repro.graph.io_metis import write_metis
        p = tmp_path / "g.graph"
        write_metis(two_cliques_graph(), p)
        assert main([str(p)]) == 0
        assert "communities: 2" in capsys.readouterr().out
