"""Tests for the machine and implementation cost models."""

import pytest

from repro.parallel.costmodel import (
    GPU_MACHINE,
    IMPLEMENTATION_PROFILES,
    PAPER_MACHINE,
    MachineModel,
)


class TestMachineModel:
    def test_paper_machine_topology(self):
        m = PAPER_MACHINE
        assert m.physical_cores == 32
        assert m.max_threads == 64

    def test_capacity_monotone(self):
        caps = [PAPER_MACHINE.capacity(t) for t in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a < b for a, b in zip(caps, caps[1:]))

    def test_capacity_smt_discount(self):
        m = PAPER_MACHINE
        assert m.capacity(32) == 32
        assert m.capacity(64) < 64
        assert m.capacity(64) == pytest.approx(32 + m.smt_gain * 32)

    def test_contention_grows_then_saturates(self):
        m = PAPER_MACHINE
        assert m.contention(1) == 1.0
        assert m.contention(16) < m.contention(32)
        assert m.contention(32) == m.contention(64)  # cores saturated

    def test_numa_kicks_in_past_one_socket(self):
        m = PAPER_MACHINE
        assert m.numa(16) == 1.0
        assert m.numa(32) > 1.0
        assert m.numa(64) > m.numa(32)

    def test_region_speedup_shape(self):
        m = PAPER_MACHINE
        s = {t: m.region_speedup(t) for t in (1, 2, 32, 64)}
        assert s[1] == pytest.approx(1.0)
        assert 1.8 < s[2] <= 2.0
        assert s[32] < 32
        assert s[32] < s[64] < 64

    def test_barrier_zero_single_thread(self):
        assert PAPER_MACHINE.barrier_seconds(1) == 0.0
        assert PAPER_MACHINE.barrier_seconds(64) > 0

    def test_scaled_machine(self):
        m = PAPER_MACHINE.scaled(1000.0)
        assert m.time_per_unit == pytest.approx(
            PAPER_MACHINE.time_per_unit * 1000
        )
        assert m.barrier_base_seconds == PAPER_MACHINE.barrier_base_seconds

    def test_gpu_machine_flat(self):
        assert GPU_MACHINE.numa(100) == 1.0
        assert GPU_MACHINE.capacity(108) == 108


class TestProfiles:
    def test_all_expected_present(self):
        assert set(IMPLEMENTATION_PROFILES) == {
            "gve", "original", "igraph", "networkit", "cugraph"
        }

    def test_sequential_flags(self):
        assert not IMPLEMENTATION_PROFILES["original"].parallel
        assert not IMPLEMENTATION_PROFILES["igraph"].parallel
        assert IMPLEMENTATION_PROFILES["gve"].parallel

    def test_gve_is_reference_cost(self):
        assert IMPLEMENTATION_PROFILES["gve"].unit_cost == 1.0

    def test_unit_cost_ordering(self):
        # original is the least efficient per unit; igraph leaner.
        p = IMPLEMENTATION_PROFILES
        assert p["original"].unit_cost > p["igraph"].unit_cost > 1.0

    def test_machine_for_scales_unit_cost(self):
        prof = IMPLEMENTATION_PROFILES["igraph"]
        m = prof.machine_for(PAPER_MACHINE)
        assert m.time_per_unit == pytest.approx(
            PAPER_MACHINE.time_per_unit * prof.unit_cost
        )

    def test_effective_threads(self):
        assert IMPLEMENTATION_PROFILES["original"].effective_threads(64) == 1
        assert IMPLEMENTATION_PROFILES["gve"].effective_threads(64) == 64
