"""Tests for atomic-op emulation."""

import threading

import numpy as np

from repro.parallel.atomics import AtomicArray


class TestAtomicArray:
    def test_add(self):
        a = AtomicArray(np.zeros(3))
        assert a.add(1, 2.5) == 2.5
        assert a.add(1, 0.5) == 3.0
        assert a.load(1) == 3.0
        assert a.op_count == 2

    def test_add_many_accumulates_duplicates(self):
        a = AtomicArray(np.zeros(4))
        a.add_many(np.array([1, 1, 2]), np.array([1.0, 2.0, 5.0]))
        assert a.values.tolist() == [0.0, 3.0, 5.0, 0.0]
        assert a.op_count == 3

    def test_cas_success(self):
        a = AtomicArray(np.array([4.0]))
        old = a.compare_and_swap(0, 4.0, 0.0)
        assert old == 4.0
        assert a.load(0) == 0.0

    def test_cas_failure_leaves_value(self):
        a = AtomicArray(np.array([4.0]))
        old = a.compare_and_swap(0, 5.0, 0.0)
        assert old == 4.0
        assert a.load(0) == 4.0

    def test_len_getitem(self):
        a = AtomicArray(np.arange(3, dtype=np.float64))
        assert len(a) == 3
        assert a[2] == 2.0

    def test_thread_safe_adds(self):
        a = AtomicArray(np.zeros(1), thread_safe=True)

        def worker():
            for _ in range(1000):
                a.add(0, 1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.load(0) == 4000.0
        assert a.op_count == 4000
