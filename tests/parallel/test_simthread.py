"""Tests for the work ledger and modelled-time simulation."""

import numpy as np
import pytest

from repro.parallel.costmodel import PAPER_MACHINE, MachineModel
from repro.parallel.schedule import Schedule
from repro.parallel.simthread import WorkLedger, scaling_curve


def flat_machine():
    """A machine with no contention/NUMA/overheads for exact arithmetic."""
    return MachineModel(
        contention_beta=0.0, numa_factor=1.0, smt_pressure=1.0,
        smt_gain=1.0, time_per_unit=1.0, chunk_overhead_units=0.0,
        atomic_seconds=0.0, barrier_base_seconds=0.0,
    )


class TestRecording:
    def test_parallel_region_chunks(self):
        led = WorkLedger()
        led.parallel(np.ones(5000), phase="p", schedule=Schedule("dynamic", 2048))
        region = led.regions[0]
        assert region.kind == "parallel"
        assert region.chunk_costs.shape[0] == 3
        assert region.total_work == pytest.approx(5000)

    def test_chunk_cap(self):
        led = WorkLedger()
        led.parallel(np.ones(200000), phase="p", schedule=Schedule("dynamic", 1))
        assert led.regions[0].chunk_costs.shape[0] <= 16384
        assert led.regions[0].total_work == pytest.approx(200000)

    def test_empty_region_skipped(self):
        led = WorkLedger()
        led.parallel(np.empty(0), phase="p")
        led.serial(0.0, phase="p")
        assert led.regions == []

    def test_serial(self):
        led = WorkLedger()
        led.serial(100.0, phase="s")
        assert led.regions[0].kind == "serial"
        assert led.total_work == pytest.approx(100.0)

    def test_atomics_counted_in_work(self):
        led = WorkLedger()
        led.parallel(np.ones(10), phase="p", atomics=7.0)
        assert led.total_work == pytest.approx(17.0)

    def test_merge_and_phases(self):
        a, b = WorkLedger(), WorkLedger()
        a.serial(1.0, phase="x")
        b.serial(2.0, phase="y")
        a.merge(b)
        assert a.phases() == ["x", "y"]
        assert a.work_by_phase() == {"x": 1.0, "y": 2.0}

    def test_clear(self):
        led = WorkLedger()
        led.serial(1.0, phase="x")
        led.clear()
        assert led.total_work == 0.0


class TestSimulate:
    def test_serial_unaffected_by_threads(self):
        led = WorkLedger()
        led.serial(100.0, phase="s")
        m = flat_machine()
        assert led.simulate(m, 1).seconds == pytest.approx(100.0)
        assert led.simulate(m, 64).seconds == pytest.approx(100.0)

    def test_parallel_ideal_speedup_on_flat_machine(self):
        led = WorkLedger()
        led.parallel(np.ones(64 * 2048), phase="p")
        m = flat_machine()
        t1 = led.simulate(m, 1).seconds
        t64 = led.simulate(m, 64).seconds
        assert t1 / t64 == pytest.approx(64.0, rel=0.01)

    def test_monotone_in_threads(self):
        led = WorkLedger()
        led.parallel(np.random.default_rng(0).uniform(1, 4, 50000), phase="p")
        led.serial(1000, phase="s")
        times = [led.simulate(PAPER_MACHINE, t).seconds for t in (1, 2, 4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_phase_seconds_sum_to_total(self):
        led = WorkLedger()
        led.parallel(np.ones(1000), phase="a")
        led.serial(50, phase="b")
        sim = led.simulate(PAPER_MACHINE, 8)
        assert sum(sim.phase_seconds.values()) == pytest.approx(sim.seconds)

    def test_phase_fraction(self):
        led = WorkLedger()
        led.serial(30, phase="a")
        led.serial(70, phase="b")
        sim = led.simulate(flat_machine(), 1)
        assert sim.phase_fraction("a") == pytest.approx(0.3)
        assert sim.phase_fraction("missing") == 0.0

    def test_work_scale_scales_serial(self):
        led = WorkLedger()
        led.serial(10.0, phase="s")
        m = flat_machine()
        assert led.simulate(m, 1, work_scale=100.0).seconds == pytest.approx(1000.0)

    def test_work_scale_parallel_approaches_linear(self):
        # At scale, chunk-granularity ceases to limit parallelism.
        led = WorkLedger()
        led.parallel(np.ones(4096), phase="p")  # only 2 chunks
        m = flat_machine()
        unscaled = led.simulate(m, 64).seconds
        scaled = led.simulate(m, 64, work_scale=1000.0).seconds
        # unscaled: 2 chunks cap speedup at 2; scaled: near 64.
        assert unscaled == pytest.approx(2048.0)
        assert scaled == pytest.approx(4096.0 * 1000 / 64, rel=0.05)

    def test_scaling_curve_helper(self):
        led = WorkLedger()
        led.parallel(np.ones(100000), phase="p")
        curve = scaling_curve(led, PAPER_MACHINE, [1, 2, 4])
        assert set(curve) == {1, 2, 4}
        assert curve[1].seconds > curve[4].seconds


class TestRegionSpanBound:
    def test_analytic_bound_close_to_exact(self):
        """The Graham-bound fast path used at scale must agree with the
        exact greedy makespan within its (1 - 1/T) * max_chunk slack."""
        from repro.parallel.schedule import Schedule, makespan
        from repro.parallel.simthread import WorkLedger

        rng = np.random.default_rng(5)
        costs = rng.uniform(1, 50, 400)
        led = WorkLedger()
        led.parallel(costs, phase="p", schedule=Schedule("dynamic", 8))
        region = led.regions[0]
        chunk_costs = region.chunk_costs
        for threads in (2, 4, 8, 16):
            exact = makespan(chunk_costs, threads, region.schedule)
            analytic = (
                float(chunk_costs.sum()) / threads
                + (1 - 1 / threads) * float(chunk_costs.max())
            )
            assert exact <= analytic + 1e-9
            assert analytic <= exact + float(chunk_costs.max())

    def test_scaled_simulation_monotone_in_scale(self):
        led = WorkLedger()
        led.parallel(np.ones(5000), phase="p")
        m = flat_machine()
        t_small = led.simulate(m, 8, work_scale=10.0).seconds
        t_big = led.simulate(m, 8, work_scale=100.0).seconds
        # Work scales 10x; the constant imbalance term (max chunk) does
        # not, so the ratio sits just below 10.
        assert t_small * 7 < t_big < t_small * 10
