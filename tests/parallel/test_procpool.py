"""Tests for the persistent worker-process pool."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel.atomics import SharedAtomicArray
from repro.parallel.procpool import (
    ProcessPool,
    WorkerCrashError,
    default_worker_count,
    worker_context,
)
from repro.parallel.shm import ShmArena

KERNELS = ("tests.parallel.pool_kernels",)


def make_pool(num_workers=2, **kwargs):
    return ProcessPool(num_workers, kernel_modules=KERNELS, **kwargs)


class TestRun:
    def test_results_sorted_by_index_with_payload_values(self):
        payloads = [{"lo": i * 10, "hi": i * 10 + 10} for i in range(8)]
        with make_pool(2) as pool:
            results = pool.run("t_echo", payloads)
        assert [r.index for r in results] == list(range(8))
        for i, r in enumerate(results):
            lo, hi, wid = r.value
            assert (lo, hi) == (i * 10, i * 10 + 10)
            assert 0 <= wid < 2
            assert r.end >= r.start

    def test_all_workers_participate(self):
        # Sleeping tasks leave the queue non-empty long enough that a
        # one-worker drain of all 16 is effectively impossible.
        with make_pool(2) as pool:
            results = pool.run("t_sleep", [{"seconds": 0.05}] * 16)
        assert {r.worker_id for r in results} == {0, 1}

    def test_empty_payload_list(self):
        with make_pool(2) as pool:
            assert pool.run("t_echo", []) == []

    def test_zero_copy_writes_visible_to_parent(self):
        with ShmArena() as arena:
            out = arena.from_array("out", np.zeros(20, dtype=np.float64))
            with make_pool(2) as pool:
                pool.bind(arena.spec())
                pool.run("t_fill", [
                    {"lo": 0, "hi": 10, "value": 3.0},
                    {"lo": 10, "hi": 20, "value": 5.0},
                ])
                pool.release()
            assert np.all(out[:10] == 3.0)
            assert np.all(out[10:] == 5.0)

    def test_shared_atomic_counter_across_processes(self):
        with ShmArena() as arena, make_pool(2) as pool:
            counter = SharedAtomicArray(
                arena.from_array("counter", np.zeros(2)),
                arena.create("counter__ops", (1,), np.float64),
                pool.lock,
            )
            pool.bind(arena.spec())
            pool.run("t_accumulate", [
                {"index": i % 2, "amount": 1.0} for i in range(10)
            ])
            pool.release()
            assert counter.values[0] + counter.values[1] == 10.0
            assert counter.op_count == 10

    def test_dispatch_deterministic_for_same_seed(self):
        payloads = [{"lo": i, "hi": i + 1} for i in range(6)]
        outs = []
        for _ in range(2):
            with make_pool(1, seed=7) as pool:
                results = pool.run("t_echo", payloads)
                # One worker drains the queue in dispatch order, so the
                # (start-time-ordered) task sequence exposes the seeded
                # permutation.
                outs.append(tuple(
                    r.index for r in sorted(results, key=lambda r: r.start)))
        assert outs[0] == outs[1]


class TestCrashContainment:
    def test_kernel_exception_raises_worker_crash_error(self):
        with make_pool(2) as pool:
            with pytest.raises(WorkerCrashError, match="kaboom"):
                pool.run("t_raise", [{"message": "kaboom"}])
            assert not pool.alive()

    def test_worker_death_raises_instead_of_hanging(self):
        with make_pool(2) as pool:
            with pytest.raises(WorkerCrashError, match="died"):
                pool.run("t_crash", [{}, {}, {}, {}])

    def test_keyboard_interrupt_in_kernel_is_contained(self):
        # BaseException in a worker must surface as a crash token, not
        # kill the worker silently or hang the parent barrier.
        with make_pool(2) as pool:
            with pytest.raises(WorkerCrashError, match="KeyboardInterrupt"):
                pool.run("t_interrupt", [{}])


class TestLifecycle:
    def test_close_idempotent_and_run_after_close_rejected(self):
        pool = make_pool(2)
        pool.run("t_echo", [{"lo": 0, "hi": 1}])
        pool.close()
        pool.close()
        with pytest.raises(ValueError, match="closed"):
            pool.run("t_echo", [{"lo": 0, "hi": 1}])

    def test_close_without_start_is_noop(self):
        make_pool(2).close()

    def test_repeated_bind_release_cycles(self):
        # The control barrier must keep bind/release broadcasts exactly
        # one-per-worker across many cycles (regression: a fast worker
        # once stole its sibling's copy off the shared queue).
        with make_pool(2) as pool:
            for round_no in range(5):
                with ShmArena() as arena:
                    out = arena.from_array(
                        "out", np.zeros(8, dtype=np.float64))
                    pool.bind(arena.spec())
                    pool.run("t_fill", [
                        {"lo": 0, "hi": 4, "value": float(round_no)},
                        {"lo": 4, "hi": 8, "value": float(round_no)},
                    ])
                    pool.release()
                    assert np.all(out == float(round_no))

    def test_rebind_without_release_replaces_arena(self):
        with make_pool(2) as pool:
            with ShmArena() as a1, ShmArena() as a2:
                a1.from_array("out", np.zeros(4, dtype=np.float64))
                out2 = a2.from_array("out", np.zeros(4, dtype=np.float64))
                pool.bind(a1.spec())
                pool.bind(a2.spec())
                pool.run("t_fill", [{"lo": 0, "hi": 4, "value": 9.0}])
                pool.release()
                assert np.all(out2 == 9.0)

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError):
            ProcessPool(0)

    def test_default_worker_count_bounds(self):
        assert 1 <= default_worker_count() <= 4

    def test_worker_context_outside_worker_raises(self):
        with pytest.raises(RuntimeError, match="outside a pool worker"):
            worker_context()
