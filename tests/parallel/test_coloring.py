"""Tests for the parallel graph coloring."""

import numpy as np

from repro.graph.builder import build_csr_from_edges
from repro.parallel.coloring import color_classes, color_graph, verify_coloring
from tests.conftest import random_graph


class TestColoring:
    def test_path_is_properly_colored(self, path10):
        colors = color_graph(path10)
        assert verify_coloring(path10, colors)

    def test_path_uses_few_colors(self, path10):
        colors = color_graph(path10)
        assert colors.max() <= 4  # chromatic number 2; greedy stays small

    def test_clique_needs_n_colors(self):
        n = 6
        src, dst = zip(*[(i, j) for i in range(n) for j in range(i + 1, n)])
        g = build_csr_from_edges(src, dst)
        colors = color_graph(g)
        assert verify_coloring(g, colors)
        assert len(np.unique(colors)) == n

    def test_star_few_colors(self, star8):
        # Chromatic number is 2; the MIS rounds may spend one extra color
        # on the spokes that lost the first round to the hub.
        colors = color_graph(star8)
        assert verify_coloring(star8, colors)
        assert len(np.unique(colors)) <= 3

    def test_random_graphs_proper(self):
        for seed in range(5):
            g = random_graph(n=80, avg_degree=8, seed=seed)
            colors = color_graph(g, seed=seed)
            assert verify_coloring(g, colors), f"seed {seed}"

    def test_self_loops_ignored(self):
        g = build_csr_from_edges([0, 0], [0, 1])
        colors = color_graph(g)
        assert verify_coloring(g, colors)

    def test_deterministic(self, small_random):
        a = color_graph(small_random, seed=3)
        b = color_graph(small_random, seed=3)
        assert np.array_equal(a, b)

    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        assert color_graph(empty_csr(0)).shape == (0,)

    def test_isolated_vertices_colored(self):
        from repro.graph.csr import empty_csr
        colors = color_graph(empty_csr(5))
        assert (colors >= 0).all()

    def test_all_vertices_colored(self, small_random):
        colors = color_graph(small_random)
        assert (colors >= 0).all()


def _color_graph_reference(graph, seed=0, max_rounds=256):
    """The original edge-scatter formulation (one ``np.maximum.at`` per
    round over every edge) — kept as the oracle for the production
    frontier-compacting implementation, which must match it exactly."""
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    src, dst, _ = graph.to_coo()
    notself = src != dst
    src, dst = src[notself], dst[notself]
    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)
    uncolored = np.ones(n, dtype=bool)
    color = 0
    while uncolored.any():
        if color >= max_rounds:
            remaining = np.flatnonzero(uncolored)
            colors[remaining] = color + np.arange(remaining.shape[0])
            break
        live = uncolored[src] & uncolored[dst]
        best = np.full(n, -1, dtype=np.int64)
        if live.any():
            np.maximum.at(best, dst[live], priority[src[live]])
        winners = uncolored & (priority > best)
        colors[winners] = color
        uncolored[winners] = False
        color += 1
    return colors


class TestReferenceEquivalence:
    def test_random_graphs_exact_match(self):
        for seed in range(6):
            g = random_graph(n=60, avg_degree=6, seed=seed)
            for cseed in (0, 1, 42):
                assert np.array_equal(
                    color_graph(g, seed=cseed),
                    _color_graph_reference(g, seed=cseed),
                ), (seed, cseed)

    def test_self_loops_exact_match(self):
        g = build_csr_from_edges([0, 0, 1, 2], [0, 1, 2, 2])
        assert np.array_equal(
            color_graph(g), _color_graph_reference(g)
        )

    def test_max_rounds_fallback_exact_match(self):
        g = random_graph(n=40, avg_degree=20, seed=9)
        assert np.array_equal(
            color_graph(g, seed=3, max_rounds=2),
            _color_graph_reference(g, seed=3, max_rounds=2),
        )


class TestColorClasses:
    def test_partition_of_vertices(self, small_random):
        colors = color_graph(small_random)
        classes = color_classes(colors)
        flat = np.concatenate(classes)
        assert sorted(flat.tolist()) == list(range(small_random.num_vertices))

    def test_classes_are_independent_sets(self, small_random):
        g = small_random
        colors = color_graph(g)
        member = {}
        for k, cls in enumerate(color_classes(colors)):
            for v in cls.tolist():
                member[v] = k
        src, dst, _ = g.to_coo()
        for u, v in zip(src.tolist(), dst.tolist()):
            if u != v:
                assert member[u] != member[v]

    def test_empty(self):
        assert color_classes(np.empty(0, dtype=np.int64)) == []
