"""Tests for the collision-free hashtable against a dict oracle."""

import numpy as np
import pytest

from repro.parallel.hashtable import CollisionFreeHashtable


class TestBasics:
    def test_accumulate_and_get(self):
        h = CollisionFreeHashtable(10)
        h.accumulate(3, 1.5)
        h.accumulate(3, 2.5)
        assert h.get(3) == pytest.approx(4.0)
        assert len(h) == 1

    def test_get_default(self):
        h = CollisionFreeHashtable(4)
        assert h.get(2) == 0.0
        assert h.get(2, default=-1.0) == -1.0

    def test_contains(self):
        h = CollisionFreeHashtable(4)
        h.accumulate(1, 1.0)
        assert 1 in h
        assert 2 not in h
        assert 99 not in h

    def test_keys_in_first_touch_order(self):
        h = CollisionFreeHashtable(10)
        for k in (7, 2, 9, 2):
            h.accumulate(k, 1.0)
        assert h.keys().tolist() == [7, 2, 9]

    def test_items_and_values(self):
        h = CollisionFreeHashtable(5)
        h.accumulate(4, 2.0)
        h.accumulate(0, 3.0)
        assert dict(h.items()) == {4: 2.0, 0: 3.0}
        assert h.values().tolist() == [2.0, 3.0]

    def test_max_key(self):
        h = CollisionFreeHashtable(6)
        h.accumulate(1, 1.0)
        h.accumulate(5, 9.0)
        h.accumulate(2, 3.0)
        assert h.max_key() == (5, 9.0)

    def test_max_key_empty_raises(self):
        with pytest.raises(KeyError):
            CollisionFreeHashtable(3).max_key()

    def test_clear_only_touches_used(self):
        h = CollisionFreeHashtable(8)
        h.accumulate(2, 5.0)
        h.clear()
        assert len(h) == 0
        assert h.get(2) == 0.0
        h.accumulate(2, 1.0)
        assert h.get(2) == 1.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CollisionFreeHashtable(-1)

    def test_zero_capacity(self):
        h = CollisionFreeHashtable(0)
        assert len(h) == 0


class TestVectorized:
    def test_accumulate_many_matches_scalar(self):
        h1 = CollisionFreeHashtable(100)
        h2 = CollisionFreeHashtable(100)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, 500)
        wgts = rng.uniform(0, 1, 500)
        h1.accumulate_many(keys, wgts)
        for k, w in zip(keys.tolist(), wgts.tolist()):
            h2.accumulate(k, w)
        assert h1.to_dict() == pytest.approx(h2.to_dict())

    def test_accumulate_many_after_scalar(self):
        h = CollisionFreeHashtable(10)
        h.accumulate(1, 1.0)
        h.accumulate_many(np.array([1, 2]), np.array([2.0, 3.0]))
        assert h.to_dict() == {1: 3.0, 2: 3.0}


class TestDictOracle:
    def test_random_workload(self):
        rng = np.random.default_rng(42)
        h = CollisionFreeHashtable(50)
        oracle = {}
        for _ in range(20):
            for _ in range(200):
                k = int(rng.integers(0, 50))
                w = float(rng.uniform(-1, 1))
                h.accumulate(k, w)
                oracle[k] = oracle.get(k, 0.0) + w
            assert h.to_dict() == pytest.approx(oracle)
            h.clear()
            oracle.clear()
