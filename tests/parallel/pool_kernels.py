"""Pool kernels used by the ProcessPool tests.

Workers import this module by path (``kernel_modules``), so the kernels
resolve identically under fork and spawn start methods.
"""

import os
import time

from repro.parallel.atomics import SharedAtomicArray
from repro.parallel.procpool import pool_kernel


@pool_kernel("t_echo")
def t_echo(ctx, *, lo, hi):
    """Return a scalar derived from the payload and the worker id."""
    return (lo, hi, ctx.worker_id)


@pool_kernel("t_fill")
def t_fill(ctx, *, lo, hi, value):
    """Write ``value`` into the bound output chunk (zero-copy check)."""
    ctx["out"][lo:hi] = value
    return hi - lo


@pool_kernel("t_accumulate")
def t_accumulate(ctx, *, index, amount):
    """Lock-guarded shared-counter update through SharedAtomicArray."""
    counter = SharedAtomicArray.attach(ctx, "counter", ctx.lock)
    counter.add(index, amount)
    return amount


@pool_kernel("t_sleep")
def t_sleep(ctx, *, seconds):
    time.sleep(seconds)
    return ctx.worker_id


@pool_kernel("t_raise")
def t_raise(ctx, *, message):
    raise ValueError(message)


@pool_kernel("t_interrupt")
def t_interrupt(ctx):
    raise KeyboardInterrupt


@pool_kernel("t_crash")
def t_crash(ctx):
    os._exit(3)
