"""Tests for loop schedules and makespan simulation."""

import numpy as np
import pytest

from repro.parallel.schedule import Schedule, assign_chunks, chunk_spans, makespan


class TestSchedule:
    def test_defaults(self):
        s = Schedule()
        assert s.kind == "dynamic"
        assert s.chunk == 2048

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Schedule("fair")

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            Schedule("static", 0)


class TestChunkSpans:
    def test_dynamic_fixed_chunks(self):
        spans = chunk_spans(10, Schedule("dynamic", 4), num_threads=2)
        assert spans == [(0, 4), (4, 8), (8, 10)]

    def test_static_near_equal(self):
        spans = chunk_spans(10, Schedule("static"), num_threads=3)
        assert len(spans) == 3
        assert spans[0][0] == 0 and spans[-1][1] == 10
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_static_more_threads_than_items(self):
        spans = chunk_spans(2, Schedule("static"), num_threads=8)
        total = sum(hi - lo for lo, hi in spans)
        assert total == 2

    def test_guided_shrinks(self):
        spans = chunk_spans(1000, Schedule("guided", 16), num_threads=4)
        sizes = [hi - lo for lo, hi in spans]
        assert sizes[0] >= sizes[-1]
        assert sum(sizes) == 1000
        assert spans[-1][1] == 1000

    def test_empty_loop(self):
        assert chunk_spans(0, Schedule(), 4) == []

    def test_spans_cover_exactly(self):
        for kind in ("static", "dynamic", "guided"):
            spans = chunk_spans(77, Schedule(kind, 8), 5)
            covered = []
            for lo, hi in spans:
                covered.extend(range(lo, hi))
            assert covered == list(range(77))


class TestAssignChunks:
    def test_static_round_robin(self):
        owner = assign_chunks(np.ones(6), 3, Schedule("static"))
        assert owner.tolist() == [0, 1, 2, 0, 1, 2]

    def test_dynamic_balances_uneven_costs(self):
        costs = np.array([10.0, 1.0, 1.0, 1.0, 1.0])
        owner = assign_chunks(costs, 2, Schedule("dynamic"))
        # all cheap chunks land on the thread not holding the big one
        big_owner = owner[0]
        assert all(o != big_owner for o in owner[1:])

    def test_empty(self):
        assert assign_chunks(np.empty(0), 2, Schedule()).shape == (0,)


class TestMakespan:
    def test_single_thread_is_total(self):
        costs = np.array([3.0, 4.0, 5.0])
        assert makespan(costs, 1, Schedule()) == pytest.approx(12.0)

    def test_perfect_split(self):
        costs = np.ones(8)
        assert makespan(costs, 4, Schedule("dynamic")) == pytest.approx(2.0)

    def test_dominant_chunk_bounds(self):
        costs = np.array([100.0] + [1.0] * 10)
        span = makespan(costs, 4, Schedule("dynamic"))
        assert span == pytest.approx(100.0)

    def test_more_threads_never_slower(self):
        rng = np.random.default_rng(1)
        costs = rng.uniform(1, 10, 64)
        spans = [makespan(costs, t, Schedule("dynamic")) for t in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(spans, spans[1:]))

    def test_overhead_added_per_chunk(self):
        costs = np.ones(4)
        base = makespan(costs, 1, Schedule("dynamic"))
        with_oh = makespan(costs, 1, Schedule("dynamic"), per_chunk_overhead=2.0)
        assert with_oh == pytest.approx(base + 8.0)

    def test_static_vs_dynamic_on_skew(self):
        # alternate expensive/cheap chunks: static round-robin piles the
        # expensive ones onto thread 0, dynamic balances better.
        costs = np.array([10.0, 1.0] * 8)
        st = makespan(costs, 2, Schedule("static"))
        dy = makespan(costs, 2, Schedule("dynamic"))
        assert dy <= st

    def test_empty(self):
        assert makespan(np.empty(0), 4, Schedule()) == 0.0


class TestEdgeCases:
    """Boundary behaviour: tiny ranges, oversized chunks, one thread."""

    @staticmethod
    def assert_exact_cover(spans, n_items):
        covered = []
        for lo, hi in spans:
            assert 0 <= lo < hi <= n_items  # non-empty, in range
            covered.extend(range(lo, hi))
        assert covered == list(range(n_items))  # cover, ordered, no overlap

    def test_empty_range_every_kind(self):
        for kind in ("static", "dynamic", "guided"):
            for threads in (1, 4):
                assert chunk_spans(0, Schedule(kind, 8), threads) == []

    def test_chunk_larger_than_range(self):
        for kind in ("dynamic", "guided"):
            spans = chunk_spans(5, Schedule(kind, 100), num_threads=4)
            assert spans == [(0, 5)]
        self.assert_exact_cover(
            chunk_spans(5, Schedule("static", 100), num_threads=4), 5)

    def test_dynamic_one_thread(self):
        spans = chunk_spans(10, Schedule("dynamic", 3), num_threads=1)
        self.assert_exact_cover(spans, 10)
        owner = assign_chunks(np.ones(len(spans)), 1, Schedule("dynamic", 3))
        assert owner.tolist() == [0] * len(spans)
        assert makespan(np.ones(len(spans)), 1,
                        Schedule("dynamic", 3)) == pytest.approx(len(spans))

    def test_guided_one_thread_exact_cover(self):
        spans = chunk_spans(1000, Schedule("guided", 16), num_threads=1)
        self.assert_exact_cover(spans, 1000)

    def test_exact_cover_sweep(self):
        for kind in ("static", "dynamic", "guided"):
            for n in (1, 2, 7, 100):
                for chunk in (1, 3, 7, 101):
                    for threads in (1, 3, 8):
                        spans = chunk_spans(n, Schedule(kind, chunk), threads)
                        self.assert_exact_cover(spans, n)
