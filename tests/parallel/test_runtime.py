"""Tests for the runtime facade."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel.runtime import Runtime
from repro.parallel.schedule import Schedule


class TestConstruction:
    def test_defaults(self):
        rt = Runtime()
        assert rt.num_threads == 1
        assert rt.schedule.kind == "dynamic"

    def test_rejects_bad_threads(self):
        with pytest.raises(ConfigError):
            Runtime(0)

    def test_rejects_bad_executor(self):
        with pytest.raises(ConfigError):
            Runtime(executor="gpu")

    def test_thread_rngs_spawned(self):
        rt = Runtime(4, seed=9)
        assert len(rt.thread_rngs) == 4
        assert len({r.state for r in rt.thread_rngs}) == 4

    def test_hashtables_per_thread(self):
        rt = Runtime(3)
        tables = rt.hashtables(10)
        assert len(tables) == 3
        assert all(t.capacity == 10 for t in tables)


class TestMapChunks:
    def test_serial_covers_all(self):
        rt = Runtime(2, schedule=Schedule("dynamic", 3))
        seen = []
        rt.map_chunks(10, lambda lo, hi, t: seen.extend(range(lo, hi)))
        assert seen == list(range(10))

    def test_threads_executor_covers_all(self):
        rt = Runtime(4, executor="threads", schedule=Schedule("dynamic", 5))
        seen = set()
        lock = threading.Lock()

        def body(lo, hi, tid):
            with lock:
                seen.update(range(lo, hi))

        with rt:
            rt.map_chunks(100, body)
        assert seen == set(range(100))

    def test_empty_loop(self):
        rt = Runtime()
        rt.map_chunks(0, lambda *a: pytest.fail("must not be called"))

    def test_thread_ids_within_range(self):
        rt = Runtime(3, schedule=Schedule("dynamic", 2))
        tids = []
        rt.map_chunks(12, lambda lo, hi, t: tids.append(t))
        assert all(0 <= t < 3 for t in tids)


class TestAccounting:
    def test_record_and_simulate(self):
        rt = Runtime(8)
        rt.record_parallel(np.ones(10000), phase="p")
        rt.record_serial(100, phase="s")
        sim1 = rt.simulate(num_threads=1)
        sim8 = rt.simulate()
        assert sim8.seconds < sim1.seconds
        assert set(sim8.phase_seconds) == {"p", "s"}

    def test_batch_order_covers_items(self):
        rt = Runtime(2, schedule=Schedule("dynamic", 4))
        batches = rt.batch_order(10)
        flat = np.concatenate(batches)
        assert flat.tolist() == list(range(10))
