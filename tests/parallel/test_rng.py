"""Tests for the xorshift32 generator."""

import numpy as np
import pytest

from repro.parallel.rng import Xorshift32


class TestScalar:
    def test_deterministic(self):
        a = Xorshift32(123)
        b = Xorshift32(123)
        assert [a.next_uint32() for _ in range(5)] == [
            b.next_uint32() for _ in range(5)
        ]

    def test_known_sequence(self):
        # xorshift32 with (13, 17, 5) from seed 1: first value is 270369.
        r = Xorshift32(1)
        assert r.next_uint32() == 270369

    def test_zero_seed_remapped(self):
        r = Xorshift32(0)
        assert r.state != 0
        assert r.next_uint32() != 0

    def test_range_32bit(self):
        r = Xorshift32(99)
        for _ in range(100):
            v = r.next_uint32()
            assert 0 < v < 2**32

    def test_next_float_in_unit_interval(self):
        r = Xorshift32(7)
        vals = [r.next_float() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert 0.3 < sum(vals) / len(vals) < 0.7

    def test_next_below(self):
        r = Xorshift32(5)
        assert all(0 <= r.next_below(7) < 7 for _ in range(50))

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Xorshift32().next_below(0)


class TestBatches:
    def test_floats_advances_state_like_scalar(self):
        a = Xorshift32(42)
        b = Xorshift32(42)
        batch = a.floats(10)
        scalar = [b.next_float() for _ in range(10)]
        assert batch.tolist() == pytest.approx(scalar)

    def test_floats_empty(self):
        assert Xorshift32().floats(0).shape == (0,)

    def test_floats_negative_rejected(self):
        with pytest.raises(ValueError):
            Xorshift32().floats(-1)

    def test_floats_fast_distribution(self):
        vals = Xorshift32(11).floats_fast(10000)
        assert vals.shape == (10000,)
        assert np.all((vals >= 0) & (vals < 1))
        assert abs(vals.mean() - 0.5) < 0.02
        assert abs(vals.std() - (1 / 12) ** 0.5) < 0.02

    def test_floats_fast_deterministic(self):
        assert np.array_equal(
            Xorshift32(3).floats_fast(64), Xorshift32(3).floats_fast(64)
        )

    def test_spawn_decorrelated(self):
        children = Xorshift32(1).spawn(4)
        states = {c.state for c in children}
        assert len(states) == 4
