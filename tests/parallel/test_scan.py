"""Tests for prefix sums (sequential and blocked-parallel forms)."""

import numpy as np
import pytest

from repro.parallel.scan import (
    blocked_exclusive_scan,
    csr_offsets_from_counts,
    exclusive_scan,
    exclusive_scan_with_total,
    inclusive_scan,
)
from repro.parallel.simthread import WorkLedger


class TestSequential:
    def test_exclusive_basic(self):
        out = exclusive_scan(np.array([3, 1, 4, 1]))
        assert out.tolist() == [0, 3, 4, 8]

    def test_exclusive_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).shape == (0,)

    def test_exclusive_single(self):
        assert exclusive_scan(np.array([5])).tolist() == [0]

    def test_inclusive_basic(self):
        assert inclusive_scan(np.array([3, 1, 4])).tolist() == [3, 4, 8]

    def test_with_total(self):
        out, total = exclusive_scan_with_total(np.array([2, 3]))
        assert out.tolist() == [0, 2]
        assert total == 5

    def test_csr_offsets(self):
        offs = csr_offsets_from_counts(np.array([2, 0, 3]))
        assert offs.tolist() == [0, 2, 2, 5]

    def test_out_param(self):
        vals = np.array([1, 2, 3])
        out = np.empty(3, dtype=vals.dtype)
        res = exclusive_scan(vals, out=out)
        assert res is out
        assert out.tolist() == [0, 1, 3]


class TestBlocked:
    @pytest.mark.parametrize("blocks", [1, 2, 3, 7, 100])
    def test_matches_sequential(self, blocks):
        rng = np.random.default_rng(blocks)
        vals = rng.integers(0, 50, 137)
        expect = exclusive_scan(vals)
        got = blocked_exclusive_scan(vals, blocks)
        assert got.tolist() == expect.tolist()

    def test_empty(self):
        out = blocked_exclusive_scan(np.array([], dtype=np.int64), 4)
        assert out.shape == (0,)

    def test_records_ledger(self):
        ledger = WorkLedger()
        blocked_exclusive_scan(np.arange(100), 4, ledger=ledger)
        assert ledger.total_work > 0
        kinds = {r.kind for r in ledger.regions}
        assert kinds == {"parallel", "serial"}

    def test_float_values(self):
        vals = np.array([0.5, 1.5, 2.0])
        assert blocked_exclusive_scan(vals, 2).tolist() == [0.0, 0.5, 2.0]
