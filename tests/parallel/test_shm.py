"""Tests for the shared-memory arena lifecycle (ShmArena/AttachedArena).

The leak tests run a child interpreter with resource-tracker warnings
promoted to errors: any "leaked shared_memory objects" message — from the
child itself or its tracker daemon — lands on the shared stderr and fails
the assertion.
"""

import glob
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

import numpy as np
import pytest

from repro.parallel.shm import AttachedArena, ShmArena

SHM_DIR = "/dev/shm"


def _live_segments(tag):
    return glob.glob(f"{SHM_DIR}/repro_{tag}_*")


class TestShmArena:
    def test_create_zero_initialized(self):
        with ShmArena() as arena:
            a = arena.create("x", (7,), np.float64)
            assert a.shape == (7,)
            assert a.dtype == np.float64
            assert np.all(a == 0.0)

    def test_from_array_round_trip(self):
        src = np.arange(12, dtype=np.int32).reshape(3, 4)
        with ShmArena() as arena:
            a = arena.from_array("m", src)
            assert np.array_equal(a, src)
            # The arena holds a copy, not a view of the source.
            src[0, 0] = 99
            assert a[0, 0] == 0

    def test_duplicate_key_rejected(self):
        with ShmArena() as arena:
            arena.create("x", (3,), np.int64)
            with pytest.raises(ValueError, match="already holds"):
                arena.create("x", (3,), np.int64)

    def test_create_after_close_rejected(self):
        arena = ShmArena()
        arena.create("x", (3,), np.int64)
        arena.unlink()
        with pytest.raises(ValueError, match="closed"):
            arena.create("y", (3,), np.int64)

    def test_double_close_and_unlink_idempotent(self):
        arena = ShmArena()
        arena.create("x", (3,), np.int64)
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_context_manager_unlinks_segments(self):
        with ShmArena() as arena:
            arena.create("x", (5,), np.float64)
            tag = arena._tag
            assert _live_segments(tag)
        assert _live_segments(tag) == []

    def test_unlink_on_exception_inside_with(self):
        with pytest.raises(RuntimeError):
            with ShmArena() as arena:
                arena.create("x", (5,), np.float64)
                tag = arena._tag
                raise RuntimeError("boom")
        assert _live_segments(tag) == []

    def test_nbytes_counts_all_segments(self):
        with ShmArena() as arena:
            arena.create("a", (10,), np.float64)
            arena.create("b", (10,), np.int32)
            assert arena.nbytes >= 10 * 8 + 10 * 4

    def test_spec_is_picklable_description(self):
        with ShmArena() as arena:
            arena.create("x", (2, 3), np.float64)
            spec = arena.spec()
            name, shape, dtype = spec["x"]
            assert name.startswith("repro_")
            assert tuple(shape) == (2, 3)
            assert np.dtype(dtype) == np.float64


class TestAttachedArena:
    def test_attach_sees_owner_writes_and_vice_versa(self):
        with ShmArena() as arena:
            owner = arena.from_array("x", np.arange(6, dtype=np.float64))
            with AttachedArena(arena.spec()) as att:
                assert np.array_equal(att["x"], owner)
                att["x"][2] = 42.0   # zero-copy: same pages
                assert owner[2] == 42.0
                owner[3] = -1.0
                assert att["x"][3] == -1.0

    def test_close_idempotent_and_does_not_unlink(self):
        with ShmArena() as arena:
            arena.create("x", (4,), np.int64)
            att = AttachedArena(arena.spec())
            att.close()
            att.close()
            # Owner's segment must survive a worker detach.
            assert _live_segments(arena._tag)

    def test_attach_unknown_segment_raises_and_cleans_up(self):
        spec = {"ghost": ("repro_deadbeef_ghost", (3,), "<f8")}
        with pytest.raises(FileNotFoundError):
            AttachedArena(spec)


class TestLeakDetection:
    """Run arena/pool lifecycles in a child interpreter and require a
    byte-clean stderr — resource-tracker leak warnings are errors."""

    def _run(self, body, expect_returncode=0):
        script = (
            "import warnings\n"
            "warnings.simplefilter('error')\n"
            + body
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)])
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c", script],
            capture_output=True, text=True, timeout=120,
            cwd=str(REPO_ROOT), env=env,
        )
        assert proc.returncode == expect_returncode, (
            proc.stdout + proc.stderr)
        for needle in ("leaked", "resource_tracker", "Traceback"):
            assert needle not in proc.stderr, proc.stderr
        return proc

    def test_clean_run_leaves_no_tracker_warnings(self):
        self._run(
            "import numpy as np\n"
            "from repro.parallel.procpool import ProcessPool\n"
            "from repro.parallel.shm import ShmArena\n"
            "with ShmArena() as arena:\n"
            "    arena.from_array('out', np.zeros(16, dtype=np.float64))\n"
            "    with ProcessPool(2, kernel_modules=("
            "'tests.parallel.pool_kernels',)) as pool:\n"
            "        pool.bind(arena.spec())\n"
            "        pool.run('t_fill', [{'lo': 0, 'hi': 8, 'value': 1.0},\n"
            "                            {'lo': 8, 'hi': 16, 'value': 2.0}])\n"
            "        pool.release()\n"
            "    assert arena['out'].sum() == 24.0\n"
        )

    def test_worker_crash_leaves_no_segments(self):
        self._run(
            "import numpy as np\n"
            "from repro.parallel.procpool import ProcessPool, "
            "WorkerCrashError\n"
            "from repro.parallel.shm import ShmArena\n"
            "with ShmArena() as arena:\n"
            "    arena.from_array('out', np.zeros(4, dtype=np.float64))\n"
            "    pool = ProcessPool(2, kernel_modules=("
            "'tests.parallel.pool_kernels',))\n"
            "    pool.bind(arena.spec())\n"
            "    try:\n"
            "        pool.run('t_crash', [{}])\n"
            "    except WorkerCrashError:\n"
            "        pass\n"
            "    else:\n"
            "        raise AssertionError('expected WorkerCrashError')\n"
            "    pool.close()\n"
        )

    def test_keyboard_interrupt_in_parent_leaves_no_segments(self):
        # The arena context manager must unlink on the way out of a
        # KeyboardInterrupt; exit code 7 proves the interrupt propagated
        # through the cleanup rather than being swallowed.
        self._run(
            "import sys\n"
            "import numpy as np\n"
            "from repro.parallel.procpool import ProcessPool\n"
            "from repro.parallel.shm import ShmArena\n"
            "try:\n"
            "    with ShmArena() as arena:\n"
            "        arena.from_array('out', np.zeros(4, dtype=np.float64))\n"
            "        with ProcessPool(2, kernel_modules=("
            "'tests.parallel.pool_kernels',)) as pool:\n"
            "            pool.bind(arena.spec())\n"
            "            raise KeyboardInterrupt\n"
            "except KeyboardInterrupt:\n"
            "    sys.exit(7)\n",
            expect_returncode=7,
        )
