"""Tests for the Barabási-Albert and Watts-Strogatz generators."""

import numpy as np
import pytest

from repro.datasets.smallworld import barabasi_albert_graph, watts_strogatz_graph
from repro.errors import ConfigError
from repro.graph.validate import validate_csr
from repro.metrics.connectivity import count_components


class TestBarabasiAlbert:
    def test_structure(self):
        g = barabasi_albert_graph(300, 3, seed=0)
        assert g.num_vertices == 300
        validate_csr(g)

    def test_connected(self):
        g = barabasi_albert_graph(200, 2, seed=1)
        assert count_components(g) == 1

    def test_edge_count(self):
        n, m = 200, 3
        g = barabasi_albert_graph(n, m, seed=2)
        seed_edges = (m + 1) * m // 2
        expect = seed_edges + (n - m - 1) * m
        assert g.num_edges == 2 * expect

    def test_scale_free_tail(self):
        g = barabasi_albert_graph(800, 2, seed=3)
        degs = np.sort(g.degrees)[::-1]
        assert degs[0] > 6 * np.median(degs)

    def test_min_degree(self):
        g = barabasi_albert_graph(100, 4, seed=4)
        assert int(g.degrees.min()) >= 4

    def test_deterministic(self):
        assert barabasi_albert_graph(50, 2, seed=5) == \
            barabasi_albert_graph(50, 2, seed=5)

    def test_validates_args(self):
        with pytest.raises(ConfigError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(ConfigError):
            barabasi_albert_graph(3, 3)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 2, 0.0, seed=0)
        assert g.num_edges == 2 * 20 * 2
        # each vertex links to its 2 nearest on both sides
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 18, 19]

    def test_full_rewire_random(self):
        g = watts_strogatz_graph(100, 3, 1.0, seed=1)
        validate_csr(g)
        # the lattice structure is destroyed: vertex 0's neighbors are
        # not all within distance 3
        nbrs = g.neighbors(0)
        dists = np.minimum(nbrs % 100, (100 - nbrs) % 100)
        assert (dists > 3).any()

    def test_partial_rewire_keeps_most_local(self):
        g = watts_strogatz_graph(200, 2, 0.1, seed=2)
        src, dst, _ = g.to_coo()
        ring_dist = np.minimum((dst - src) % 200, (src - dst) % 200)
        assert float((ring_dist <= 2).mean()) > 0.8

    def test_connected_at_low_p(self):
        g = watts_strogatz_graph(150, 3, 0.05, seed=3)
        assert count_components(g) == 1

    def test_validates_args(self):
        with pytest.raises(ConfigError):
            watts_strogatz_graph(3, 1, 0.1)
        with pytest.raises(ConfigError):
            watts_strogatz_graph(20, 10, 0.1)
        with pytest.raises(ConfigError):
            watts_strogatz_graph(20, 2, 1.5)
