"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.core.leiden import leiden
from repro.datasets.geometric import road_network
from repro.datasets.kmer import kmer_graph
from repro.datasets.lfr import lfr_like_graph, powerlaw_integers
from repro.datasets.rmat import rmat_edges, rmat_graph
from repro.datasets.sbm import planted_partition, stochastic_block_model
from repro.errors import ConfigError
from repro.graph.validate import validate_csr
from repro.metrics.comparison import adjusted_rand_index
from repro.metrics.connectivity import count_components


class TestPlantedPartition:
    def test_structure(self):
        g, membership = planted_partition(4, 20, seed=1)
        assert g.num_vertices == 80
        assert membership.shape == (80,)
        validate_csr(g)

    def test_recoverable(self):
        g, planted = planted_partition(5, 30, intra_degree=14,
                                       inter_degree=2, seed=2)
        res = leiden(g)
        assert adjusted_rand_index(res.membership, planted) > 0.9

    def test_deterministic(self):
        a, _ = planted_partition(3, 10, seed=5)
        b, _ = planted_partition(3, 10, seed=5)
        assert a == b

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            planted_partition(0, 10)
        with pytest.raises(ConfigError):
            planted_partition(2, 1)


class TestSBM:
    def test_block_sizes_respected(self):
        g, membership = stochastic_block_model([10, 20, 30], seed=0)
        assert g.num_vertices == 60
        assert np.bincount(membership).tolist() == [10, 20, 30]

    def test_zero_mixing_disconnects_blocks(self):
        g, _ = stochastic_block_model([40, 40], mixing=0.0,
                                      intra_degree=8, seed=1)
        assert count_components(g) >= 2

    def test_high_mixing_blurs_structure(self):
        g_low, planted = stochastic_block_model([50] * 4, mixing=0.1, seed=2)
        g_high, _ = stochastic_block_model([50] * 4, mixing=0.9, seed=2)
        ari_low = adjusted_rand_index(leiden(g_low).membership, planted)
        ari_high = adjusted_rand_index(leiden(g_high).membership, planted)
        assert ari_low > ari_high

    def test_validates_args(self):
        with pytest.raises(ConfigError):
            stochastic_block_model([], seed=0)
        with pytest.raises(ConfigError):
            stochastic_block_model([10], mixing=1.5)

    def test_average_degree_roughly_matches(self):
        g, _ = stochastic_block_model([100] * 4, intra_degree=12, seed=3)
        davg = g.num_edges / g.num_vertices
        assert 8 <= davg <= 14


class TestRmat:
    def test_edges_in_range(self):
        src, dst = rmat_edges(8, 1000, seed=0)
        assert src.min() >= 0 and src.max() < 256
        assert dst.min() >= 0 and dst.max() < 256

    def test_graph_size(self):
        g = rmat_graph(8, 8.0, seed=1)
        assert g.num_vertices == 256
        validate_csr(g)

    def test_connect_leaves_no_isolated(self):
        g = rmat_graph(8, 4.0, seed=2, connect=True)
        assert (g.degrees > 0).all()

    def test_skewed_degrees(self):
        g = rmat_graph(10, 16.0, seed=3)
        degs = np.sort(g.degrees)[::-1]
        # heavy tail: the top vertex dominates the median
        assert degs[0] > 8 * np.median(degs)

    def test_rejects_bad_probs(self):
        with pytest.raises(ConfigError):
            rmat_edges(4, 10, a=0.6, b=0.3, c=0.2)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            rmat_edges(0, 10)


class TestRoadNetwork:
    def test_low_degree(self):
        g, _ = road_network(20, 100, seed=0)
        davg = g.num_edges / g.num_vertices
        assert 1.8 <= davg <= 2.6

    def test_connected(self):
        g, _ = road_network(10, 50, seed=1)
        assert count_components(g) == 1

    def test_blocks_recoverable(self):
        from repro.metrics.comparison import normalized_mutual_information
        g, planted = road_network(8, 60, seed=2)
        res = leiden(g)
        # Modularity's resolution splits long chains finer than the
        # planted blocks, so compare with NMI (tolerant of refinement)
        # rather than ARI.
        assert normalized_mutual_information(res.membership, planted) > 0.6

    def test_validates(self):
        with pytest.raises(ConfigError):
            road_network(0, 5)


class TestKmer:
    def test_low_degree_chains(self):
        g = kmer_graph(50, 20, seed=0)
        assert g.num_vertices == 1000
        davg = g.num_edges / g.num_vertices
        assert 1.8 <= davg <= 2.6

    def test_chain_components(self):
        g = kmer_graph(30, 15, link_probability=0.0, seed=1)
        assert count_components(g) == 30

    def test_validates(self):
        with pytest.raises(ConfigError):
            kmer_graph(1, 1)


class TestLfr:
    def test_powerlaw_bounds(self):
        rng = np.random.default_rng(0)
        vals = powerlaw_integers(1000, 2.5, 2, 50, rng)
        assert vals.min() >= 2 and vals.max() <= 50

    def test_powerlaw_is_heavy_tailed(self):
        rng = np.random.default_rng(1)
        vals = powerlaw_integers(5000, 2.5, 1, 1000, rng)
        assert np.median(vals) <= 3
        assert vals.max() > 50

    def test_powerlaw_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            powerlaw_integers(10, 0.5, 1, 10, rng)
        with pytest.raises(ConfigError):
            powerlaw_integers(10, 2.0, 5, 2, rng)

    def test_graph_shape(self):
        g, membership = lfr_like_graph(500, avg_degree=10, seed=0)
        assert g.num_vertices == 500
        assert membership.shape == (500,)
        validate_csr(g)
        davg = g.num_edges / g.num_vertices
        assert 6 <= davg <= 14

    def test_low_mixing_recoverable(self):
        g, planted = lfr_like_graph(600, avg_degree=16, mixing=0.05,
                                    min_community=40, seed=1)
        res = leiden(g)
        assert adjusted_rand_index(res.membership, planted) > 0.8

    def test_validates(self):
        with pytest.raises(ConfigError):
            lfr_like_graph(2)
        with pytest.raises(ConfigError):
            lfr_like_graph(100, mixing=2.0)
