"""Tests for the 13-graph registry."""

import pytest

from repro.datasets.registry import (
    REGISTRY,
    graph_spec,
    load_graph,
    registry_names,
)
from repro.errors import ConfigError
from repro.graph.validate import validate_csr

#: The paper's Table 2 names, verbatim.
PAPER_GRAPHS = {
    "indochina-2004", "uk-2002", "arabic-2005", "uk-2005", "webbase-2001",
    "it-2004", "sk-2005", "com-LiveJournal", "com-Orkut", "asia_osm",
    "europe_osm", "kmer_A2a", "kmer_V1r",
}


class TestRegistry:
    def test_all_13_graphs_present(self):
        assert set(registry_names()) == PAPER_GRAPHS

    def test_family_filter(self):
        assert len(registry_names("web")) == 7
        assert len(registry_names("social")) == 2
        assert len(registry_names("road")) == 2
        assert len(registry_names("kmer")) == 2

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            graph_spec("facebook")

    def test_specs_have_paper_stats(self):
        for spec in REGISTRY.values():
            assert spec.paper_vertices > 1e6
            assert spec.paper_edges > 1e7
            assert spec.paper_avg_degree > 1
            assert spec.paper_communities > 10

    @pytest.mark.parametrize("name", sorted(PAPER_GRAPHS))
    def test_graphs_generate_and_validate(self, name):
        g = load_graph(name)
        validate_csr(g)
        assert g.num_vertices >= 4000

    @pytest.mark.parametrize("family,lo,hi", [
        ("road", 1.8, 2.6),
        ("kmer", 1.8, 2.6),
        ("social", 14.0, 90.0),
    ])
    def test_average_degrees_match_family(self, family, lo, hi):
        for name in registry_names(family):
            g = load_graph(name)
            davg = g.num_edges / g.num_vertices
            assert lo <= davg <= hi, name

    def test_web_degrees_track_paper(self):
        for name in registry_names("web"):
            g = load_graph(name)
            spec = graph_spec(name)
            davg = g.num_edges / g.num_vertices
            # heavy-tailed sampling loses some duplicate endpoints; stay
            # within a factor ~2 of the paper's figure.
            assert spec.paper_avg_degree / 2.2 <= davg <= spec.paper_avg_degree * 1.3

    def test_load_is_cached(self):
        a = load_graph("asia_osm")
        b = load_graph("asia_osm")
        assert a is b

    def test_different_seed_different_graph(self):
        a = load_graph("asia_osm", seed=1)
        b = load_graph("asia_osm", seed=2)
        assert a is not b
