"""Property-based tests for algorithm-level invariants.

These encode the paper's correctness claims as properties over random
graphs: memberships are valid partitions, Σ bookkeeping is exact,
aggregation preserves modularity, and Leiden never emits an
internally-disconnected community.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate import aggregate_batch
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.graph.builder import build_csr_from_edges
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from repro.metrics.partition import renumber_membership
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE


@st.composite
def random_csr(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    return build_csr_from_edges(src, dst, num_vertices=n)


class TestLeidenInvariants:
    @given(random_csr(), st.sampled_from(["greedy", "random"]))
    @settings(max_examples=40, deadline=None)
    def test_membership_is_valid_partition(self, graph, refinement):
        res = leiden(graph, LeidenConfig(refinement=refinement))
        C = res.membership
        assert C.shape[0] == graph.num_vertices
        if C.shape[0]:
            assert C.min() >= 0
            # compact ids
            assert len(np.unique(C)) == C.max() + 1

    @given(random_csr())
    @settings(max_examples=30, deadline=None)
    def test_no_disconnected_communities(self, graph):
        res = leiden(graph)
        report = disconnected_communities(graph, res.membership)
        assert report.num_disconnected == 0

    @given(random_csr())
    @settings(max_examples=30, deadline=None)
    def test_quality_at_least_singletons(self, graph):
        res = leiden(graph)
        q = modularity(graph, res.membership)
        singletons = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
        assert q >= modularity(graph, singletons) - 1e-9

    @given(random_csr())
    @settings(max_examples=25, deadline=None)
    def test_dendrogram_consistent_with_membership(self, graph):
        from repro.metrics.comparison import adjusted_rand_index
        res = leiden(graph)
        if graph.num_vertices == 0:
            return
        flat = res.dendrogram.flatten()
        assert adjusted_rand_index(flat, res.membership) == 1.0


class TestAggregationInvariants:
    @given(random_csr(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_modularity_preserved(self, graph, k):
        rng = np.random.default_rng(k)
        C = rng.integers(0, k, graph.num_vertices)
        Cren, ids = renumber_membership(C)
        sup = aggregate_batch(graph, Cren, len(ids), runtime=Runtime())
        q1 = modularity(graph, Cren)
        q2 = modularity(sup, np.arange(len(ids), dtype=VERTEX_DTYPE))
        assert abs(q1 - q2) < 1e-6

    @given(random_csr(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_weight_preserved(self, graph, k):
        rng = np.random.default_rng(k + 1)
        C = rng.integers(0, k, graph.num_vertices)
        Cren, ids = renumber_membership(C)
        sup = aggregate_batch(graph, Cren, len(ids), runtime=Runtime())
        assert abs(sup.total_weight - graph.total_weight) < 1e-3
