"""Property-based tests for the graph substrate."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_csr_from_edges
from repro.graph.io_edgelist import read_edgelist, write_edgelist
from repro.graph.io_mtx import read_mtx, write_mtx
from repro.graph.ops import coalesce_edges, symmetrize_edges
from repro.graph.segments import ragged_indices
from repro.graph.validate import validate_csr

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30),
              st.floats(0.1, 100.0, allow_nan=False)),
    min_size=0, max_size=120,
)


@st.composite
def coo_arrays(draw):
    edges = draw(edge_lists)
    if not edges:
        return (np.empty(0, np.int32), np.empty(0, np.int32),
                np.empty(0, np.float32))
    src, dst, wgt = zip(*edges)
    return (np.array(src, np.int32), np.array(dst, np.int32),
            np.array(wgt, np.float32))


class TestBuildInvariants:
    @given(coo_arrays())
    @settings(max_examples=60, deadline=None)
    def test_build_produces_valid_symmetric_csr(self, coo):
        src, dst, wgt = coo
        g = build_csr_from_edges(src, dst, wgt)
        validate_csr(g)

    @given(coo_arrays())
    @settings(max_examples=60, deadline=None)
    def test_total_weight_preserved_up_to_symmetrization(self, coo):
        src, dst, wgt = coo
        g = build_csr_from_edges(src, dst, wgt)
        loops = src == dst
        expected = (2 * wgt[~loops].sum(dtype=np.float64)
                    + wgt[loops].sum(dtype=np.float64))
        assert abs(g.total_weight - expected) <= 1e-3 * max(1.0, expected)

    @given(coo_arrays())
    @settings(max_examples=40, deadline=None)
    def test_build_idempotent(self, coo):
        src, dst, wgt = coo
        g1 = build_csr_from_edges(src, dst, wgt)
        s, d, w = g1.to_coo()
        g2 = build_csr_from_edges(s, d, w, symmetrize=False,
                                  num_vertices=g1.num_vertices)
        assert g1 == g2


class TestOpsProperties:
    @given(coo_arrays())
    @settings(max_examples=50, deadline=None)
    def test_symmetrize_doubles_nonloop_edges(self, coo):
        src, dst, wgt = coo
        s2, d2, _ = symmetrize_edges(src, dst, wgt)
        loops = int((src == dst).sum())
        assert s2.shape[0] == 2 * (src.shape[0] - loops) + loops

    @given(coo_arrays())
    @settings(max_examples=50, deadline=None)
    def test_coalesce_preserves_sum(self, coo):
        src, dst, wgt = coo
        _, _, w2 = coalesce_edges(src, dst, wgt)
        np.testing.assert_allclose(
            w2.sum(dtype=np.float64), wgt.sum(dtype=np.float64), rtol=1e-4
        )

    @given(coo_arrays())
    @settings(max_examples=50, deadline=None)
    def test_coalesce_unique_pairs(self, coo):
        src, dst, wgt = coo
        s, d, _ = coalesce_edges(src, dst, wgt)
        pairs = set(zip(s.tolist(), d.tolist()))
        assert len(pairs) == s.shape[0]


class TestIoRoundtrip:
    @given(coo_arrays())
    @settings(max_examples=30, deadline=None)
    def test_edgelist_roundtrip(self, coo):
        src, dst, wgt = coo
        g = build_csr_from_edges(src, dst, wgt)
        buf = io.StringIO()
        write_edgelist(g, buf, directed=True)
        buf.seek(0)
        back = read_edgelist(buf, symmetrize=False,
                             num_vertices=g.num_vertices)
        assert back == g

    @given(coo_arrays())
    @settings(max_examples=30, deadline=None)
    def test_mtx_roundtrip(self, coo):
        src, dst, wgt = coo
        g = build_csr_from_edges(src, dst, wgt)
        buf = io.StringIO()
        write_mtx(g, buf)
        buf.seek(0)
        assert read_mtx(buf, symmetrize=False) == g


class TestSegments:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)),
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_ragged_indices_match_loop(self, rows):
        starts = np.array([r[0] for r in rows], dtype=np.int64)
        lengths = np.array([r[1] for r in rows], dtype=np.int64)
        seg, idx = ragged_indices(starts, lengths)
        expect_seg, expect_idx = [], []
        for k, (s, l) in enumerate(rows):
            for off in range(l):
                expect_seg.append(k)
                expect_idx.append(s + off)
        assert seg.tolist() == expect_seg
        assert idx.tolist() == expect_idx
