"""Property-based tests for the quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_csr_from_edges
from repro.metrics.comparison import (
    adjusted_rand_index,
    normalized_mutual_information,
)
from repro.metrics.modularity import community_weights, modularity
from repro.metrics.partition import renumber_membership
from repro.types import VERTEX_DTYPE


@st.composite
def graph_with_membership(draw):
    n = draw(st.integers(2, 30))
    m = draw(st.integers(1, 80))
    k = draw(st.integers(1, 6))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    g = build_csr_from_edges(src, dst, num_vertices=n)
    C = rng.integers(0, k, n).astype(VERTEX_DTYPE)
    return g, C


class TestModularityProperties:
    @given(graph_with_membership())
    @settings(max_examples=60, deadline=None)
    def test_range(self, gc):
        g, C = gc
        q = modularity(g, C)
        assert -0.5 - 1e-9 <= q <= 1.0 + 1e-9

    @given(graph_with_membership())
    @settings(max_examples=60, deadline=None)
    def test_equation1_identity(self, gc):
        """Dense pairwise form equals community form of Equation 1:
        Q = (1/2m) Σ_ij [A_ij − K_i K_j / 2m] δ(C_i, C_j)."""
        g, C = gc
        two_m = g.total_weight
        if two_m == 0:
            return
        n = g.num_vertices
        A = np.zeros((n, n))
        src, dst, wgt = g.to_coo()
        np.add.at(A, (src, dst), wgt.astype(np.float64))
        K = g.vertex_weights()
        delta = C[:, None] == C[None, :]
        dense_form = float(
            ((A - np.outer(K, K) / two_m) * delta).sum() / two_m
        )
        assert abs(dense_form - modularity(g, C)) < 1e-6

    @given(graph_with_membership())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_renumbering(self, gc):
        g, C = gc
        ren, _ = renumber_membership(C)
        assert modularity(g, ren) == modularity(g, C)

    @given(graph_with_membership())
    @settings(max_examples=40, deadline=None)
    def test_community_weights_total(self, gc):
        g, C = gc
        np.testing.assert_allclose(
            community_weights(g, C).sum(), g.total_weight, rtol=1e-6
        )


class TestComparisonProperties:
    memberships = st.lists(st.integers(0, 5), min_size=2, max_size=60)

    @given(memberships)
    @settings(max_examples=60, deadline=None)
    def test_self_similarity(self, labels):
        assert normalized_mutual_information(labels, labels) == \
            pytest.approx(1.0)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(memberships, st.permutations(range(6)))
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_relabeling(self, labels, perm):
        relabeled = [perm[c] for c in labels]
        assert normalized_mutual_information(labels, relabeled) == \
            pytest.approx(1.0)
        assert adjusted_rand_index(labels, relabeled) == pytest.approx(1.0)
