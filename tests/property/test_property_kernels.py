"""Property tests for the counting-kernel / sort-kernel equivalence.

The counting kernels must be drop-in, *element-exact* replacements for
the sort kernels everywhere the batch engine uses them — and the batch
engine itself must keep matching the per-vertex loop references.  These
properties run whole phases and whole Leiden runs over random graphs,
including the awkward shapes: empty graphs, single-community graphs and
self-loop-heavy graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate import aggregate_batch, aggregate_loop
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.local_move import local_move_batch, local_move_loop
from repro.core.workspace import KernelWorkspace
from repro.graph.builder import build_csr_from_edges
from repro.metrics.partition import renumber_membership
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE


@st.composite
def random_csr(draw, self_heavy=False):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    if self_heavy and m:
        loops = rng.random(m) < 0.5
        dst = np.where(loops, src, dst)
    return build_csr_from_edges(src, dst, num_vertices=n)


def _row_sets(graph):
    """Per-vertex {target: weight} dicts — engine-order-independent."""
    rows = []
    for v in range(graph.num_vertices):
        dst, wgt = graph.edges(v)
        rows.append({int(d): float(w) for d, w in zip(dst, wgt)})
    return rows


class TestEngineIdenticalOutput:
    @given(random_csr())
    @settings(max_examples=25, deadline=None)
    def test_leiden_sort_count_identical_membership(self, graph):
        res = {}
        for engine in ("sort", "count"):
            cfg = LeidenConfig(kernel_engine=engine)
            res[engine] = leiden(graph, cfg, runtime=Runtime(num_threads=1))
        assert np.array_equal(
            res["sort"].membership, res["count"].membership
        )

    @given(random_csr(self_heavy=True))
    @settings(max_examples=15, deadline=None)
    def test_leiden_engines_identical_on_self_loop_heavy(self, graph):
        res = {}
        for engine in ("sort", "count"):
            cfg = LeidenConfig(kernel_engine=engine)
            res[engine] = leiden(graph, cfg, runtime=Runtime(num_threads=1))
        assert np.array_equal(
            res["sort"].membership, res["count"].membership
        )


class TestLocalMoveVsLoop:
    @given(random_csr(), st.sampled_from(["sort", "count"]))
    @settings(max_examples=20, deadline=None)
    def test_batch_sigma_bookkeeping_exact(self, graph, engine):
        """After the batch phase, Σ must equal the recount from C."""
        n = graph.num_vertices
        K = graph.vertex_weights().copy()
        C = np.arange(n, dtype=VERTEX_DTYPE)
        Sigma = K.astype(np.float64).copy()
        ws = KernelWorkspace(n, engine=engine)
        local_move_batch(
            graph, C, K, Sigma, 0.01,
            runtime=Runtime(num_threads=1), workspace=ws,
        )
        recount = np.bincount(C, weights=K, minlength=n)
        assert np.allclose(Sigma, recount)

    @given(random_csr())
    @settings(max_examples=15, deadline=None)
    def test_count_and_sort_batches_move_identically(self, graph):
        n = graph.num_vertices
        K = graph.vertex_weights().copy()
        results = []
        for engine in ("sort", "count"):
            C = np.arange(n, dtype=VERTEX_DTYPE)
            Sigma = K.astype(np.float64).copy()
            ws = KernelWorkspace(n, engine=engine)
            local_move_batch(
                graph, C, K, Sigma, 1e-6,
                runtime=Runtime(num_threads=1), workspace=ws,
            )
            results.append((C.copy(), Sigma.copy()))
        assert np.array_equal(results[0][0], results[1][0])
        assert results[0][1].tobytes() == results[1][1].tobytes()


class TestAggregateVsLoop:
    @given(random_csr(), st.sampled_from(["sort", "count"]))
    @settings(max_examples=20, deadline=None)
    def test_batch_matches_loop_row_sets(self, graph, engine):
        n = graph.num_vertices
        rng = np.random.default_rng(0)
        C, ids = renumber_membership(
            rng.integers(0, max(n // 3, 1), n).astype(VERTEX_DTYPE)
        )
        k = int(ids.shape[0])
        ws = KernelWorkspace(n, engine=engine)
        a = aggregate_batch(
            graph, C, k, runtime=Runtime(num_threads=1), workspace=ws
        )
        b = aggregate_loop(graph, C, k, runtime=Runtime(num_threads=1))
        assert a.num_vertices == b.num_vertices == k
        ra, rb = _row_sets(a), _row_sets(b)
        for c in range(k):
            assert set(ra[c]) == set(rb[c])
            for d in ra[c]:
                assert abs(ra[c][d] - rb[c][d]) < 1e-4

    @given(random_csr(self_heavy=True))
    @settings(max_examples=10, deadline=None)
    def test_count_sort_aggregate_bitwise_identical(self, graph):
        n = graph.num_vertices
        rng = np.random.default_rng(1)
        C, ids = renumber_membership(
            rng.integers(0, max(n // 2, 1), n).astype(VERTEX_DTYPE)
        )
        k = int(ids.shape[0])
        outs = []
        for engine in ("sort", "count"):
            ws = KernelWorkspace(n, engine=engine)
            outs.append(aggregate_batch(
                graph, C, k, runtime=Runtime(num_threads=1), workspace=ws
            ))
        a, b = outs
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.degrees, b.degrees)
        assert np.array_equal(a.targets, b.targets)
        assert a.weights.tobytes() == b.weights.tobytes()

    def test_single_community_graph(self):
        """Everything collapses into one super-vertex self loop."""
        g = build_csr_from_edges([0, 1, 2], [1, 2, 0], num_vertices=3)
        C = np.zeros(3, dtype=VERTEX_DTYPE)
        for engine in ("sort", "count"):
            ws = KernelWorkspace(3, engine=engine)
            agg = aggregate_batch(
                g, C, 1, runtime=Runtime(num_threads=1), workspace=ws
            )
            assert agg.num_vertices == 1
            dst, wgt = agg.edges(0)
            assert dst.tolist() == [0]
            assert float(wgt[0]) == float(g.weights.sum())

    def test_empty_graph(self):
        g = build_csr_from_edges([], [], num_vertices=4)
        C = np.zeros(4, dtype=VERTEX_DTYPE)
        for engine in ("sort", "count"):
            ws = KernelWorkspace(4, engine=engine)
            agg = aggregate_batch(
                g, C, 1, runtime=Runtime(num_threads=1), workspace=ws
            )
            assert agg.num_vertices == 1
            assert agg.num_edges == 0
