"""Property-based tests for the dynamic-update substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.batch import EdgeBatch, apply_batch
from repro.graph.builder import build_csr_from_edges
from repro.graph.validate import validate_csr


@st.composite
def graph_and_batch(draw):
    n = draw(st.integers(3, 25))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    m = draw(st.integers(1, 60))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    g = build_csr_from_edges(src[keep], dst[keep], num_vertices=n)

    # insertions: random pairs; deletions: a sample of existing edges
    n_ins = draw(st.integers(0, 10))
    ins = None
    if n_ins:
        u = rng.integers(0, n, n_ins)
        v = rng.integers(0, n, n_ins)
        sel = u != v
        ins = np.stack([u[sel], v[sel]], axis=1) if sel.any() else None
    gs, gd, _ = g.to_coo()
    fwd = gs < gd
    dels = None
    if fwd.any() and draw(st.booleans()):
        count = draw(st.integers(1, min(5, int(fwd.sum()))))
        pick = rng.choice(int(fwd.sum()), size=count, replace=False)
        dels = np.stack([gs[fwd][pick], gd[fwd][pick]], axis=1)
    return g, EdgeBatch.from_edges(ins, dels)


class TestApplyBatchProperties:
    @given(graph_and_batch())
    @settings(max_examples=50, deadline=None)
    def test_result_is_valid_symmetric(self, gb):
        g, batch = gb
        g2 = apply_batch(g, batch)
        validate_csr(g2)

    @given(graph_and_batch())
    @settings(max_examples=50, deadline=None)
    def test_deleted_pairs_absent(self, gb):
        g, batch = gb
        g2 = apply_batch(g, batch)
        # a deleted pair may be re-inserted by the same batch; only check
        # pairs not also inserted
        ins = set()
        for u, v in zip(batch.insert_sources.tolist(),
                        batch.insert_targets.tolist()):
            ins.add((min(u, v), max(u, v)))
        src, dst, _ = g2.to_coo()
        present = set(zip(np.minimum(src, dst).tolist(),
                          np.maximum(src, dst).tolist()))
        for u, v in zip(batch.delete_sources.tolist(),
                        batch.delete_targets.tolist()):
            key = (min(u, v), max(u, v))
            if key not in ins:
                assert key not in present

    @given(graph_and_batch())
    @settings(max_examples=50, deadline=None)
    def test_inserted_pairs_present(self, gb):
        g, batch = gb
        g2 = apply_batch(g, batch)
        src, dst, _ = g2.to_coo()
        present = set(zip(src.tolist(), dst.tolist()))
        for u, v in zip(batch.insert_sources.tolist(),
                        batch.insert_targets.tolist()):
            assert (u, v) in present
            assert (v, u) in present or u == v

    @given(graph_and_batch())
    @settings(max_examples=30, deadline=None)
    def test_empty_batch_is_identity(self, gb):
        g, _ = gb
        assert apply_batch(g, EdgeBatch.from_edges()) == g

    @given(graph_and_batch())
    @settings(max_examples=30, deadline=None)
    def test_insert_then_delete_roundtrip(self, gb):
        """Inserting fresh edges then deleting them restores the graph."""
        g, _ = gb
        n = g.num_vertices
        src, dst, _ = g.to_coo()
        existing = set(zip(np.minimum(src, dst).tolist(),
                           np.maximum(src, dst).tolist()))
        fresh = [(u, v) for u in range(n) for v in range(u + 1, n)
                 if (u, v) not in existing][:4]
        if not fresh:
            return
        added = apply_batch(g, EdgeBatch.from_edges(fresh))
        restored = apply_batch(added, EdgeBatch.from_edges(deletions=fresh))
        assert restored == g
