"""Property-based tests for community-aware relabeling.

Over random graphs and membership levels: every produced permutation is
a bijection whose relabeled graph round-trips bitwise, grouped
memberships are contiguous, and the relabeled-solve result's
dendrogram flattens to its membership (the mapped-back dendrogram and
membership stay mutually consistent).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.graph.builder import build_csr_from_edges
from repro.graph.relabel import (
    community_relabeling,
    is_community_contiguous,
    validate_permutation,
)
from repro.metrics.modularity import modularity
from repro.metrics.partition import renumber_membership


@st.composite
def graph_and_levels(draw):
    n = draw(st.integers(1, 40))
    m = draw(st.integers(0, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    graph = build_csr_from_edges(src, dst, num_vertices=n)
    num_levels = draw(st.integers(1, 3))
    levels = []
    k = n
    fine = rng.integers(0, max(1, k), n)
    for _ in range(num_levels):
        levels.append(fine.copy())
        k = max(1, int(fine.max()) + 1)
        coarse_map = rng.integers(0, max(1, k // 2 + 1), k)
        fine = coarse_map[fine]
    return graph, levels


@st.composite
def random_csr(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    return build_csr_from_edges(src, dst, num_vertices=n)


class TestRelabelingProperties:
    @given(graph_and_levels(), st.sampled_from(["community",
                                                "community-degree"]))
    @settings(max_examples=60, deadline=None)
    def test_perm_is_bijection_and_roundtrips(self, gl, mode):
        graph, levels = gl
        n = graph.num_vertices
        relab = community_relabeling(graph, levels, mode=mode)
        perm = validate_permutation(relab.perm, n)
        assert np.array_equal(relab.inv[perm], np.arange(n))
        g2, inv = graph.permute(perm)
        back, _ = g2.permute(inv)
        compact = graph.compact()
        assert np.array_equal(back.offsets, compact.offsets)
        assert np.array_equal(back.targets, compact.targets)
        assert np.array_equal(back.weights, compact.weights)

    @given(graph_and_levels())
    @settings(max_examples=60, deadline=None)
    def test_coarsest_level_becomes_contiguous(self, gl):
        graph, levels = gl
        relab = community_relabeling(graph, levels, mode="community")
        grouped = relab.to_relabeled(levels[-1])
        assert is_community_contiguous(grouped)
        assert relab.num_communities == np.unique(levels[-1]).shape[0]

    @given(graph_and_levels())
    @settings(max_examples=40, deadline=None)
    def test_quality_invariant_under_relabeling(self, gl):
        graph, levels = gl
        relab = community_relabeling(graph, levels, mode="community")
        g2, _ = graph.permute(relab.perm)
        m = levels[0]
        assert modularity(graph, m) == modularity(g2, relab.to_relabeled(m))


class TestRelabeledSolveProperties:
    @given(random_csr(), st.sampled_from(["community", "community-degree"]))
    @settings(max_examples=25, deadline=None)
    def test_dendrogram_flattens_to_membership(self, graph, mode):
        res = leiden(graph, LeidenConfig(seed=5, relabel=mode))
        relab = res.relabeling
        assert relab is not None
        validate_permutation(relab.perm, graph.num_vertices)
        # the mapped-back dendrogram composed down and renumbered equals
        # the mapped-back membership (renumbering commutes with the
        # permutation because it assigns ids by sorted community value)
        flat, _ = renumber_membership(res.dendrogram.flatten())
        assert np.array_equal(flat, res.membership)

    @given(random_csr())
    @settings(max_examples=25, deadline=None)
    def test_membership_is_valid_partition(self, graph):
        res = leiden(graph, LeidenConfig(seed=7, relabel="community"))
        C = res.membership
        assert C.shape[0] == graph.num_vertices
        if C.shape[0]:
            assert C.min() >= 0
            assert len(np.unique(C)) == C.max() + 1
