"""Property-based tests for the parallel substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.hashtable import CollisionFreeHashtable
from repro.parallel.rng import Xorshift32
from repro.parallel.scan import blocked_exclusive_scan, exclusive_scan
from repro.parallel.schedule import Schedule, chunk_spans, makespan


class TestHashtableVsDict:
    @given(st.lists(st.tuples(st.integers(0, 19),
                              st.floats(-10, 10, allow_nan=False)),
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict(self, ops):
        h = CollisionFreeHashtable(20)
        oracle = {}
        for key, w in ops:
            h.accumulate(key, w)
            oracle[key] = oracle.get(key, 0.0) + w
        got = h.to_dict()
        assert set(got) == set(oracle)
        for k in oracle:
            assert abs(got[k] - oracle[k]) < 1e-9

    @given(st.lists(st.integers(0, 9), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_clear_restores_empty(self, keys):
        h = CollisionFreeHashtable(10)
        for k in keys:
            h.accumulate(k, 1.0)
        h.clear()
        assert len(h) == 0
        assert all(h.get(k) == 0.0 for k in range(10))


class TestScanProperties:
    @given(st.lists(st.integers(0, 1000), max_size=300),
           st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_blocked_equals_sequential(self, values, blocks):
        vals = np.array(values, dtype=np.int64)
        assert np.array_equal(
            blocked_exclusive_scan(vals, blocks), exclusive_scan(vals)
        )

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_exclusive_scan_invariants(self, values):
        vals = np.array(values, dtype=np.int64)
        out = exclusive_scan(vals)
        assert out[0] == 0
        assert np.all(np.diff(out) == vals[:-1])


class TestScheduleProperties:
    @given(st.integers(0, 500), st.integers(1, 32),
           st.sampled_from(["static", "dynamic", "guided"]),
           st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_spans_partition_range(self, n, threads, kind, chunk):
        spans = chunk_spans(n, Schedule(kind, chunk), threads)
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(n))

    @given(st.lists(st.floats(0.1, 10, allow_nan=False),
                    min_size=1, max_size=60),
           st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, costs, threads):
        arr = np.array(costs)
        span = makespan(arr, threads, Schedule("dynamic"))
        total = float(arr.sum())
        # never better than perfect split, never worse than serial
        assert span >= total / threads - 1e-9
        assert span <= total + 1e-9
        # at least the largest single chunk
        assert span >= float(arr.max()) - 1e-9


class TestRngProperties:
    @given(st.integers(1, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_state_stays_nonzero(self, seed):
        r = Xorshift32(seed)
        for _ in range(50):
            assert r.next_uint32() != 0

    @given(st.integers(0, 2**32 - 1), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_batch_scalar_equivalence(self, seed, count):
        a, b = Xorshift32(seed), Xorshift32(seed)
        assert a.floats(count).tolist() == [
            b.next_float() for _ in range(count)
        ]
