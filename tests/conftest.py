"""Shared fixtures: small graphs with known structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import build_csr_from_edges


def two_cliques_graph(clique_size: int = 5):
    """Two cliques joined by a single bridge edge; expected: 2 communities."""
    edges = []
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    edges.append((0, clique_size))
    src, dst = zip(*edges)
    return build_csr_from_edges(src, dst)


def ring_of_cliques_graph(num_cliques: int = 6, clique_size: int = 5):
    """Cliques arranged in a ring; expected: one community per clique."""
    edges = []
    n = num_cliques * clique_size
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        edges.append((base, (base + clique_size) % n))
    src, dst = zip(*edges)
    return build_csr_from_edges(src, dst)


def path_graph(n: int = 10):
    u = np.arange(n - 1)
    return build_csr_from_edges(u, u + 1)


def star_graph(n: int = 8):
    """Hub 0 connected to 1..n-1."""
    return build_csr_from_edges(np.zeros(n - 1, dtype=np.int64),
                                np.arange(1, n))


def weighted_triangle_graph():
    """Triangle with distinct weights 1, 2, 3."""
    return build_csr_from_edges([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])


def random_graph(n: int = 60, avg_degree: float = 6.0, seed: int = 0,
                 weighted: bool = False):
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    wgt = rng.uniform(0.5, 3.0, src.shape[0]) if weighted else None
    return build_csr_from_edges(src, dst, wgt, num_vertices=n)


@pytest.fixture
def two_cliques():
    return two_cliques_graph()


@pytest.fixture
def ring_of_cliques():
    return ring_of_cliques_graph()


@pytest.fixture
def path10():
    return path_graph(10)


@pytest.fixture
def star8():
    return star_graph(8)


@pytest.fixture
def weighted_triangle():
    return weighted_triangle_graph()


@pytest.fixture
def small_random():
    return random_graph()


@pytest.fixture
def small_random_weighted():
    return random_graph(weighted=True, seed=3)
