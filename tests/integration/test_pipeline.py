"""End-to-end integration: generators -> Leiden -> metrics, all families.

These tests run the full pipeline the way the benchmark harness does,
across every dataset family and every engine/refinement combination, and
check the paper's cross-cutting claims at small scale.
"""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.louvain import louvain
from repro.datasets.geometric import road_network
from repro.datasets.kmer import kmer_graph
from repro.datasets.lfr import lfr_like_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.sbm import stochastic_block_model
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from repro.parallel.runtime import Runtime


def family_graphs():
    web, _ = lfr_like_graph(400, avg_degree=12, mixing=0.08,
                            min_community=30, seed=11)
    social, _ = stochastic_block_model([60] * 5, intra_degree=14,
                                       mixing=0.4, seed=12)
    road, _ = road_network(10, 40, seed=13)
    kmer = kmer_graph(20, 20, seed=14)
    rmat = rmat_graph(8, 8.0, seed=15)
    return {
        "web": web, "social": social, "road": road,
        "kmer": kmer, "rmat": rmat,
    }


GRAPHS = family_graphs()


@pytest.mark.parametrize("family", sorted(GRAPHS))
class TestEveryFamily:
    def test_leiden_quality_and_connectivity(self, family):
        g = GRAPHS[family]
        res = leiden(g)
        q = modularity(g, res.membership)
        assert q > 0.2, f"{family}: Q={q}"
        report = disconnected_communities(g, res.membership)
        assert report.num_disconnected == 0

    def test_louvain_runs(self, family):
        g = GRAPHS[family]
        res = louvain(g)
        assert modularity(g, res.membership) > 0.15

    def test_all_variant_configs(self, family):
        g = GRAPHS[family]
        for variant in ("default", "medium", "heavy"):
            for refinement in ("greedy", "random"):
                cfg = LeidenConfig.variant(variant, refinement=refinement,
                                           seed=7)
                res = leiden(g, cfg)
                assert res.num_communities >= 1
                assert disconnected_communities(
                    g, res.membership
                ).num_disconnected == 0, (family, variant, refinement)


class TestEngineEquivalence:
    """Batch and loop engines implement the same algorithm."""

    @pytest.mark.parametrize("family", ["social", "road"])
    def test_comparable_quality(self, family):
        g = GRAPHS[family]
        qb = modularity(g, leiden(g, LeidenConfig(engine="batch")).membership)
        ql = modularity(g, leiden(g, LeidenConfig(engine="loop")).membership)
        assert abs(qb - ql) < 0.08, (family, qb, ql)

    def test_loop_engine_no_disconnected(self):
        g = GRAPHS["social"]
        res = leiden(g, LeidenConfig(engine="loop"))
        assert disconnected_communities(
            g, res.membership
        ).num_disconnected == 0


class TestRuntimeIntegration:
    def test_thread_executor_end_to_end(self):
        g = GRAPHS["social"]
        with Runtime(num_threads=4, executor="threads") as rt:
            res = leiden(g, LeidenConfig(seed=5), runtime=rt)
        assert res.num_communities >= 1

    def test_shared_runtime_accumulates_ledger(self):
        g = GRAPHS["road"]
        rt = Runtime(num_threads=2)
        leiden(g, runtime=rt)
        first = rt.ledger.total_work
        leiden(g, runtime=rt)
        assert rt.ledger.total_work > first


class TestFileRoundtripPipeline:
    def test_write_detect_reload(self, tmp_path):
        from repro.graph.io_mtx import read_mtx, write_mtx
        g = GRAPHS["web"]
        p = tmp_path / "web.mtx"
        write_mtx(g, p)
        g2 = read_mtx(p, symmetrize=False)
        res1 = leiden(g, LeidenConfig(seed=1))
        res2 = leiden(g2, LeidenConfig(seed=1))
        assert np.array_equal(res1.membership, res2.membership)
