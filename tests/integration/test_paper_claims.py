"""The paper's qualitative claims, checked end-to-end at test scale.

Each test encodes one sentence from the evaluation section; the full
registry-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.baselines import IMPLEMENTATIONS
from repro.bench.harness import run_once
from repro.bench.harness import run_leiden_config
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.metrics.modularity import modularity

WEB = "indochina-2004"
ROAD = "asia_osm"
SOCIAL = "com-Orkut"


class TestHeadlineOrdering:
    """'GVE-Leiden outperforms original, igraph, NetworKit and cuGraph.'"""

    def test_gve_fastest_modeled(self):
        recs = {i: run_once(i, ROAD, seed=42)
                for i in ("gve", "original", "igraph", "networkit", "cugraph")}
        gve = recs.pop("gve")
        for name, rec in recs.items():
            assert rec.modeled_seconds > gve.modeled_seconds, name

    def test_sequential_slower_than_parallel(self):
        orig = run_once("original", ROAD, seed=42)
        nk = run_once("networkit", ROAD, seed=42)
        assert orig.modeled_seconds > nk.modeled_seconds


class TestQualityClaims:
    """'GVE-Leiden obtains ~equal modularity to original/igraph, higher
    than NetworKit; no disconnected communities.'"""

    @pytest.mark.parametrize("graph", [WEB, ROAD])
    def test_quality_matches_sequential_reference(self, graph):
        gve = run_once("gve", graph, seed=42)
        orig = run_once("original", graph, seed=42)
        assert gve.modularity > orig.modularity - 0.01

    def test_networkit_worse_on_road(self):
        gve = run_once("gve", ROAD, seed=42)
        nk = run_once("networkit", ROAD, seed=42)
        assert nk.modularity < gve.modularity - 0.1

    @pytest.mark.parametrize("impl", ["gve", "original", "igraph"])
    def test_guaranteed_implementations_zero_disconnected(self, impl):
        rec = run_once(impl, ROAD, seed=42)
        assert rec.disconnected_fraction == 0.0


class TestGreedyVsRandom:
    """'The greedy approach performs the best on average, both in terms
    of runtime and modularity' (Figures 1-2)."""

    def test_greedy_not_slower_and_not_worse(self):
        g = load_graph(WEB)
        impl = IMPLEMENTATIONS["gve"]
        greedy, _ = run_leiden_config(WEB, LeidenConfig(refinement="greedy"))
        random_, _ = run_leiden_config(WEB, LeidenConfig(refinement="random"))
        tg = impl.modeled_seconds(greedy, scale=1000.0)
        tr = impl.modeled_seconds(random_, scale=1000.0)
        qg = modularity(g, greedy.membership)
        qr = modularity(g, random_.membership)
        assert tg <= tr * 1.1
        assert qg >= qr - 0.01


class TestMoveVsRefineLabels:
    """'Both approaches have roughly the same runtime and modularity'
    (Figures 3-4)."""

    def test_roughly_equal(self):
        g = load_graph(SOCIAL)
        move, _ = run_leiden_config(SOCIAL, LeidenConfig(vertex_label="move"))
        refine, _ = run_leiden_config(SOCIAL,
                                      LeidenConfig(vertex_label="refine"))
        qm = modularity(g, move.membership)
        qr = modularity(g, refine.membership)
        assert abs(qm - qr) < 0.05


class TestLowDegreeCost:
    """'Graphs with lower average degree exhibit a higher runtime/|E|
    factor' (Figure 8)."""

    def test_road_costlier_per_edge_than_web(self):
        road = run_once("gve", ROAD, seed=42)
        web = run_once("gve", WEB, seed=42)
        from repro.datasets.registry import graph_spec
        road_rate = road.modeled_seconds / graph_spec(ROAD).paper_edges
        web_rate = web.modeled_seconds / graph_spec(WEB).paper_edges
        assert road_rate > web_rate
