"""Weighted graphs through the full pipeline, all engines and qualities.

The paper's graphs default to unit weights; the implementation must
nevertheless be fully weight-aware (Section 3's definitions are weighted
throughout).  These tests run genuinely weighted inputs end to end and
check weight-sensitivity explicitly.
"""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.graph.builder import build_csr_from_edges
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import random_graph


def weighted_two_groups(strong=10.0, weak=0.1):
    """Two groups joined by MANY weak edges; only weights separate them."""
    edges, weights = [], []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                edges.append((base + i, base + j))
                weights.append(strong)
    # Full bipartite cross edges: topologically the groups are tightly
    # tied (36 cross vs 15 intra edges per group); only the weights make
    # the two groups the right partition.
    for i in range(6):
        for j in range(6):
            edges.append((i, 6 + j))
            weights.append(weak)
    src, dst = zip(*edges)
    return build_csr_from_edges(src, dst, weights)


class TestWeightSensitivity:
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_weights_drive_partition(self, engine):
        g = weighted_two_groups()
        res = leiden(g, LeidenConfig(engine=engine))
        C = res.membership
        assert len(np.unique(C[:6])) == 1
        assert len(np.unique(C[6:])) == 1
        assert C[0] != C[6]

    def test_unweighted_topology_merges_instead(self):
        """The same topology with unit weights has no 2-group structure:
        the cross edges tie the groups together."""
        g_weighted = weighted_two_groups()
        src, dst, _ = g_weighted.to_coo()
        g_flat = build_csr_from_edges(src, dst, symmetrize=False,
                                      num_vertices=g_weighted.num_vertices)
        weighted = leiden(g_weighted)
        flat = leiden(g_flat)
        assert weighted.num_communities == 2
        # flat communities do not coincide with the weighted split
        assert flat.num_communities != 2 or \
            len(np.unique(flat.membership[:6])) != 1

    def test_scaling_all_weights_is_invariant(self):
        """Modularity is scale-free: multiplying every weight by a
        constant must not change the partition."""
        g = random_graph(n=80, avg_degree=6, seed=3, weighted=True)
        src, dst, wgt = g.to_coo()
        g10 = build_csr_from_edges(src, dst, wgt * 8.0, symmetrize=False,
                                   num_vertices=g.num_vertices)
        a = leiden(g, LeidenConfig(seed=5))
        b = leiden(g10, LeidenConfig(seed=5))
        assert np.array_equal(a.membership, b.membership)


class TestWeightedQualityAndGuarantee:
    @pytest.mark.parametrize("quality,resolution", [
        ("modularity", 1.0),
        ("cpm", 0.05),
    ])
    def test_full_run_weighted(self, quality, resolution):
        g = random_graph(n=150, avg_degree=6, seed=9, weighted=True)
        res = leiden(g, LeidenConfig(quality=quality, resolution=resolution))
        assert res.num_communities >= 1
        assert disconnected_communities(g, res.membership).num_disconnected == 0

    def test_weighted_beats_random_partition(self):
        g = random_graph(n=100, avg_degree=8, seed=10, weighted=True)
        res = leiden(g)
        rng = np.random.default_rng(0)
        random_C = rng.integers(0, res.num_communities + 1,
                                g.num_vertices).astype(np.int32)
        assert modularity(g, res.membership) > modularity(g, random_C)

    def test_weighted_louvain(self):
        from repro.core.louvain import louvain
        g = weighted_two_groups()
        res = louvain(g)
        assert res.num_communities == 2
