"""Figure 8: runtime / |E| factor per graph.

Paper: road networks, protein k-mer graphs (low average degree) and the
poorly-clustered social networks show the highest per-edge cost.
"""

from repro.bench.experiments import fig8_rate


def test_fig8_rate(once):
    result = once(fig8_rate.run)
    print()
    print(fig8_rate.report(result))

    fam = result.family_means()
    # Low-degree families cost more per edge than the web crawls.
    assert fam["road"] > fam["web"]
    assert fam["kmer"] > fam["web"]

    # The per-edge factor spreads by an order of magnitude across the
    # dataset (visible as the spiky Figure 8 profile).
    rates = list(result.seconds_per_edge.values())
    assert max(rates) / min(rates) > 3
