"""Figures 1-2: greedy vs random refinement with medium/heavy variants.

Paper: greedy performs best on average in both runtime and modularity;
medium/heavy variants do not pay off.
"""

from repro.bench.experiments import fig1_fig2_refinement


def test_fig1_fig2_refinement(once):
    result = once(fig1_fig2_refinement.run)
    print()
    print(fig1_fig2_refinement.report(result))

    base = result.outcomes["greedy-default"]

    # Figure 1: greedy-default is the fastest configuration on average.
    for name, outcome in result.outcomes.items():
        rel = outcome.mean_relative_runtime(base)
        assert rel >= 0.95, (name, rel)

    # The heavier variants do more work than their default counterpart.
    for refinement in ("greedy", "random"):
        default = result.outcomes[f"{refinement}-default"]
        heavy = result.outcomes[f"{refinement}-heavy"]
        assert heavy.mean_relative_runtime(default) > 1.0

    # Figure 2: greedy quality is at least random's (within noise).
    assert base.mean_quality() >= \
        result.outcomes["random-default"].mean_quality() - 0.01
