"""Ablations of the paper's individual optimizations (Section 4.1).

The paper motivates each optimization qualitatively; these benchmarks
quantify them one at a time on registry stand-ins, holding everything
else at the default configuration:

- flag-based vertex pruning,
- threshold scaling (the *medium* variant disables it),
- the 0.8 aggregation tolerance (the *heavy* variant disables it),
- and the incremental (dynamic) update strategies built on top.
"""

from repro.baselines.registry import IMPLEMENTATIONS
from repro.bench.harness import paper_scale, run_leiden_config
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.dynamic import dynamic_leiden
from repro.dynamic.batch import random_batch
from repro.metrics.modularity import modularity

GRAPHS = ["uk-2002", "asia_osm", "com-Orkut"]


def _modeled(graph_name, cfg):
    result, _ = run_leiden_config(graph_name, cfg)
    return IMPLEMENTATIONS["gve"].modeled_seconds(
        result, scale=paper_scale(graph_name)
    ), result


def test_ablation_vertex_pruning(once):
    """Pruning cuts local-moving work without hurting quality."""

    def run():
        out = {}
        for g in GRAPHS:
            t_on, r_on = _modeled(g, LeidenConfig())
            t_off, r_off = _modeled(g, LeidenConfig(vertex_pruning=False))
            out[g] = (t_on, t_off,
                      modularity(load_graph(g), r_on.membership),
                      modularity(load_graph(g), r_off.membership))
        return out

    out = once(run)
    print("\nAblation: flag-based vertex pruning")
    print(f"{'graph':<12} {'with [s]':>10} {'without [s]':>12} "
          f"{'Q with':>8} {'Q without':>10}")
    for g, (t_on, t_off, q_on, q_off) in out.items():
        print(f"{g:<12} {t_on:10.2f} {t_off:12.2f} {q_on:8.4f} {q_off:10.4f}")
        assert t_on < t_off, g          # pruning saves work
        assert q_on > q_off - 0.02, g   # at no quality cost


def test_ablation_threshold_scaling(once):
    """Threshold scaling (vs a strict fixed tolerance) saves early-pass
    iterations at negligible quality cost."""

    def run():
        out = {}
        for g in GRAPHS:
            t_on, r_on = _modeled(g, LeidenConfig())
            t_off, r_off = _modeled(g, LeidenConfig(threshold_scaling=False))
            out[g] = (t_on, t_off,
                      modularity(load_graph(g), r_on.membership),
                      modularity(load_graph(g), r_off.membership))
        return out

    out = once(run)
    print("\nAblation: threshold scaling")
    for g, (t_on, t_off, q_on, q_off) in out.items():
        print(f"{g:<12} with {t_on:8.2f}s  without {t_off:8.2f}s  "
              f"Q {q_on:.4f} vs {q_off:.4f}")
        assert t_on <= t_off * 1.05, g
        assert q_on > q_off - 0.02, g


def test_ablation_aggregation_tolerance(once):
    """The 0.8 aggregation tolerance prevents minimal-utility passes."""

    def run():
        out = {}
        for g in GRAPHS:
            _, r_on = _modeled(g, LeidenConfig())
            _, r_off = _modeled(g, LeidenConfig(aggregation_tolerance=None))
            out[g] = (r_on.num_passes, r_off.num_passes,
                      r_on.ledger.total_work, r_off.ledger.total_work)
        return out

    out = once(run)
    print("\nAblation: aggregation tolerance 0.8")
    any_saved = False
    for g, (p_on, p_off, w_on, w_off) in out.items():
        print(f"{g:<12} passes {p_on} vs {p_off}, work {w_on:.3g} vs {w_off:.3g}")
        assert p_on <= p_off, g
        any_saved |= w_on < w_off
    assert any_saved  # the tolerance pays for itself somewhere


def test_ablation_dynamic_strategies(once):
    """Incremental updates: frontier < delta-screening < naive < scratch
    in work, at comparable quality."""
    graph = load_graph("uk-2002")

    def run():
        base = leiden(graph, LeidenConfig(seed=3))
        batch = random_batch(graph, num_insertions=200, num_deletions=200,
                             seed=5)
        rows = {}
        for approach in ("frontier", "delta-screening", "naive"):
            dyn = dynamic_leiden(graph, base.membership, batch,
                                 LeidenConfig(seed=3), approach=approach)
            rows[approach] = (dyn.result.ledger.total_work,
                              modularity(dyn.graph, dyn.membership),
                              dyn.affected_fraction)
        static = leiden(dyn.graph, LeidenConfig(seed=3))
        rows["static rerun"] = (static.ledger.total_work,
                                modularity(dyn.graph, static.membership),
                                1.0)
        return rows

    rows = once(run)
    print("\nAblation: dynamic update strategies (uk-2002, ±200 edges)")
    print(f"{'approach':<16} {'work units':>12} {'Q':>8} {'affected':>9}")
    for name, (work, q, frac) in rows.items():
        print(f"{name:<16} {work:12.3g} {q:8.4f} {frac:9.3f}")

    q_static = rows["static rerun"][1]
    for approach in ("frontier", "delta-screening", "naive"):
        assert rows[approach][1] > q_static - 0.02, approach
    assert rows["frontier"][0] < rows["naive"][0]
    assert rows["frontier"][0] < rows["static rerun"][0]
