"""Figure 9: strong scaling of GVE-Leiden, 1 to 64 threads.

Paper: 11.4x mean speedup at 32 threads (~1.6x per thread doubling) and
16.0x at 64 threads, limited by NUMA effects.
"""

from repro.bench.experiments import fig9_scaling


def test_fig9_scaling(once):
    result = once(fig9_scaling.run)
    print()
    print(fig9_scaling.report(result))

    mean = result.mean_speedups()
    # Monotone increasing in threads.
    ordered = [mean[t] for t in (1, 2, 4, 8, 16, 32, 64)]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))

    # Magnitudes near the paper's anchors.
    assert 6.0 < mean[32] < 16.0     # paper: 11.4x
    assert 8.0 < mean[64] < 24.0     # paper: 16.0x
    assert mean[64] < 32             # far from linear: NUMA + SMT

    # ~1.6x per doubling up to 32 threads.
    per_doubling = result.mean_speedup_per_doubling()
    assert 1.35 < per_doubling < 1.8

    # The knee: the 32->64 gain is much smaller than the 2->4 gain.
    assert mean[64] / mean[32] < mean[4] / mean[2]
