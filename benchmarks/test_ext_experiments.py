"""Extension experiments as asserted benchmarks.

Louvain-vs-Leiden quantifies the refinement phase's cost/benefit; the
dynamic-update experiment (strategy sweep over batch sizes) complements
the single-batch ablation in ``test_ablations.py``.
"""

from repro.bench.experiments import ext_dynamic_update, ext_louvain_vs_leiden


def test_louvain_vs_leiden(once):
    result = once(ext_louvain_vs_leiden.run)
    print()
    print(ext_louvain_vs_leiden.report(result))

    # Refinement costs extra runtime (paper: ~19% of GVE-Leiden's time is
    # the refinement phase, plus the extra passes its bounds induce).
    overhead = result.refinement_overhead()
    assert 1.0 < overhead < 3.0

    # Quality parity or better: Leiden never loses meaningfully.
    assert result.mean_quality_gap() > -0.005
    for g in result.quality["leiden"]:
        assert result.quality["leiden"][g] > \
            result.quality["louvain"][g] - 0.01, g

    # Leiden's structural guarantee holds on every graph.
    assert all(v == 0 for v in result.disconnected["leiden"].values())


def test_dynamic_update_sweep(once):
    result = once(lambda: ext_dynamic_update.run("uk-2002", (50, 400)))
    print()
    print(ext_dynamic_update.report(result))

    for size, row in result.outcomes.items():
        # frontier touches the fewest vertices and does the least work
        assert row["frontier"][2] < row["naive"][2]
        assert row["frontier"][0] <= row["naive"][0] * 1.05
        # all approaches match from-scratch quality
        for approach, (ratio, gap, _) in row.items():
            assert gap > -0.02, (size, approach)
            assert ratio < 1.1, (size, approach)

    # the frontier grows with batch size
    fracs = [result.outcomes[s]["frontier"][2] for s in (50, 400)]
    assert fracs[0] < fracs[1]
