"""Figures 3-4: move-based vs refine-based super-vertex labels.

Paper: both variants have roughly the same runtime and modularity on
average; move-based (Traag et al.'s recommendation) is the default.
"""

from repro.bench.experiments import fig3_fig4_supervertex


def test_fig3_fig4_supervertex(once):
    result = once(fig3_fig4_supervertex.run)
    print()
    print(fig3_fig4_supervertex.report(result))

    # Figure 3: relative runtime within ~25% of each other on average.
    rel = result.mean_relative_runtime("refine")
    assert 0.75 < rel < 1.35, rel

    # Figure 4: modularity essentially equal.
    qm = result.mean_quality("move")
    qr = result.mean_quality("refine")
    assert abs(qm - qr) < 0.02, (qm, qr)
