"""Table 2: dataset statistics and GVE-Leiden community counts."""

from repro.bench.experiments import table2_datasets


def test_table2_datasets(once):
    rows = once(table2_datasets.run)
    print()
    print(table2_datasets.report(rows))

    assert len(rows) == 13
    by_name = {r.name: r for r in rows}

    # Degree profiles track the paper's (Table 2 Davg column).
    for r in rows:
        assert r.avg_degree == r.avg_degree  # not NaN
        if r.family in ("road", "kmer"):
            assert 1.8 <= r.avg_degree <= 2.6

    # Community-structure shapes: Orkut has by far the fewest
    # communities; webbase the most among the web crawls.
    assert by_name["com-Orkut"].num_communities == min(
        r.num_communities for r in rows
    )
    web = [r for r in rows if r.family == "web"]
    assert max(w.num_communities for w in web) == \
        by_name["webbase-2001"].num_communities
