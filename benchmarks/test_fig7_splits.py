"""Figure 7: phase split and pass split of GVE-Leiden's runtime.

Paper: on average 46% local-moving / 19% refinement / 20% aggregation /
15% other; the first pass takes ~63% on average; aggregation dominates on
social networks; later passes dominate on low-degree graphs.
"""

from repro.bench.experiments import fig7_splits
from repro.datasets.registry import registry_names


def test_fig7_splits(once):
    result = once(fig7_splits.run)
    print()
    print(fig7_splits.report(result))

    mean = result.mean_phase_fractions()
    # Local-moving is the largest phase on average (paper: 46%).
    assert mean["local_move"] == max(mean.values())
    assert 0.25 < mean["local_move"] < 0.75
    # Refinement and aggregation each take a substantial share.
    assert mean["refine"] > 0.05
    assert mean["aggregate"] > 0.05

    # Aggregation is a major phase on social networks (paper: their
    # majority phase).  NOTE (recorded in EXPERIMENTS.md): on the
    # scaled-down stand-ins local-moving retains the largest share even
    # on social graphs — their poor community structure keeps the
    # flag-pruned move phase re-visiting vertices — so we check that
    # aggregation clearly outweighs refinement there rather than that it
    # dominates outright.
    for g in registry_names("social"):
        assert result.phase_fractions[g]["aggregate"] > \
            result.phase_fractions[g]["refine"], g

    # Pass split: the first pass dominates on high-degree graphs...
    for g in ("indochina-2004", "sk-2005", "com-Orkut"):
        assert result.pass_fractions[g][0] == max(result.pass_fractions[g]), g
    # ...while low-degree graphs spend a far larger share in later
    # passes than the dense graphs do (paper: "subsequent passes take
    # precedence in execution time on low-degree graphs").
    for g in ("asia_osm", "kmer_A2a"):
        later = 1.0 - result.pass_fractions[g][0]
        assert later > 0.4, g
        assert later > 1.0 - result.pass_fractions["indochina-2004"][0], g
