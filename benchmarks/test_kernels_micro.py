"""Micro-benchmarks for the hot kernels (pytest-benchmark, repeated).

These measure the real Python-level throughput of the phase kernels and
substrates on a mid-size graph — useful for tracking regressions in the
vectorized implementations.
"""

import numpy as np
import pytest

from repro.core.aggregate import aggregate_batch
from repro.core.local_move import local_move_batch
from repro.core.refine import refine_batch
from repro.datasets.sbm import planted_partition
from repro.metrics.connectivity import connected_components
from repro.metrics.partition import renumber_membership
from repro.parallel.coloring import color_graph
from repro.parallel.hashtable import CollisionFreeHashtable
from repro.parallel.runtime import Runtime
from repro.parallel.scan import exclusive_scan
from repro.types import VERTEX_DTYPE


@pytest.fixture(scope="module")
def graph():
    g, _ = planted_partition(40, 100, intra_degree=10, inter_degree=3,
                             seed=0)
    return g


def test_local_move_iteration(benchmark, graph):
    def run():
        n = graph.num_vertices
        C = np.arange(n, dtype=VERTEX_DTYPE)
        K = graph.vertex_weights().copy()
        S = K.copy()
        return local_move_batch(graph, C, K, S, 0.01, runtime=Runtime(),
                                max_iterations=3)

    iters, _ = benchmark(run)
    assert iters >= 1


def test_refine_sweep(benchmark, graph):
    n = graph.num_vertices
    CB = np.zeros(n, dtype=VERTEX_DTYPE)

    def run():
        C = np.arange(n, dtype=VERTEX_DTYPE)
        K = graph.vertex_weights().copy()
        S = K.copy()
        return refine_batch(graph, CB, C, K, S, runtime=Runtime())

    moves = benchmark(run)
    assert moves > 0


def test_aggregate(benchmark, graph):
    rng = np.random.default_rng(0)
    C, ids = renumber_membership(rng.integers(0, 40, graph.num_vertices))

    def run():
        return aggregate_batch(graph, C, len(ids), runtime=Runtime())

    sup = benchmark(run)
    assert sup.num_vertices == len(ids)


def test_coloring(benchmark, graph):
    colors = benchmark(color_graph, graph)
    assert colors.max() >= 1


def test_connected_components(benchmark, graph):
    labels = benchmark(connected_components, graph)
    assert labels.shape[0] == graph.num_vertices


def test_exclusive_scan_1m(benchmark):
    values = np.ones(1_000_000, dtype=np.int64)
    out = benchmark(exclusive_scan, values)
    assert out[-1] == 999_999


def test_hashtable_accumulate(benchmark):
    keys = np.random.default_rng(0).integers(0, 1000, 10000)
    weights = np.ones(10000)

    def run():
        h = CollisionFreeHashtable(1000)
        h.accumulate_many(keys, weights)
        return len(h)

    count = benchmark(run)
    assert count <= 1000
