"""Table 1: mean speedups of GVE-Leiden over each implementation.

Paper: 436x over original Leiden, 104x over igraph, 8.2x over NetworKit,
3.0x over cuGraph.  The reproduction checks the ordering and rough
magnitudes (see EXPERIMENTS.md for the recorded numbers).
"""

from repro.bench.experiments import table1_speedup


def test_table1_speedup(once):
    result = once(table1_speedup.run)
    print()
    print(table1_speedup.report(result))

    m = result.measured
    # Ordering: original slowest, then igraph, then networkit/cugraph.
    assert m["original"] > m["igraph"] > m["networkit"]
    assert m["original"] > 100          # paper: 436x
    assert 20 < m["igraph"] < 400       # paper: 104x
    assert 2 < m["networkit"] < 30      # paper: 8.2x
    assert 1 < m["cugraph"] < 15        # paper: 3.0x
