"""Section 5.5: indirect comparison with ParLeiden and KatanaGraph.

Paper: 219x over original Leiden on com-LiveJournal, which implies ~18x
over ParLeiden-S, ~22x over ParLeiden-D and ~166x over KatanaGraph.
"""

from repro.bench.experiments import sec55_indirect


def test_sec55_indirect(once):
    result = once(sec55_indirect.run)
    print()
    print(sec55_indirect.report(result))

    # Speedup over original Leiden on com-LiveJournal (paper: 219x).
    assert 50 < result.gve_vs_original < 800

    est = result.estimates
    # The derived ordering is fixed by the published numbers.
    assert est["KatanaGraph Leiden"] > est["ParLeiden-D"] > \
        est["ParLeiden-S"] > 1.0
