"""Shared benchmark configuration.

Each ``test_*`` module regenerates one table or figure from the paper's
evaluation.  The experiment drivers are deterministic and memoized, so a
single execution per experiment suffices: the heavyweight benchmarks use
``benchmark.pedantic(..., rounds=1)`` and print the paper-style report
(run pytest with ``-s`` to see the tables).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
