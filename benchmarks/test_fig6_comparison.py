"""Figure 6: the full five-implementation, thirteen-graph comparison.

Sub-panels reproduced: (a) runtime, (b) speedups, (c) modularity,
(d) fraction of internally-disconnected communities — including cuGraph's
out-of-memory failures on the five largest web crawls.
"""


from repro.bench.experiments import fig6_comparison

PAPER_OOM = {"arabic-2005", "uk-2005", "webbase-2001", "it-2004", "sk-2005"}


def test_fig6_comparison(once):
    result = once(fig6_comparison.run)
    print()
    print(fig6_comparison.report(result))

    recs = result.records

    # (a)/(b): GVE-Leiden is the fastest implementation on every graph.
    for g in result.graphs:
        gve = recs[g]["gve"]
        assert gve.ok
        for impl, rec in recs[g].items():
            if impl == "gve" or not rec.ok:
                continue
            assert rec.modeled_seconds > gve.modeled_seconds, (g, impl)

    # (b): mean speedup ordering matches the paper.
    means = {i: result.mean_speedup(i)
             for i in ("original", "igraph", "networkit", "cugraph")}
    assert means["original"] > means["igraph"] > means["networkit"]

    # (c): GVE modularity ~equals original/igraph everywhere (0.3% paper);
    # NetworKit is much worse on road/k-mer graphs (25% paper average).
    for g in result.graphs:
        assert abs(recs[g]["gve"].modularity
                   - recs[g]["original"].modularity) < 0.02, g
    for g in ("asia_osm", "europe_osm", "kmer_A2a", "kmer_V1r"):
        assert recs[g]["networkit"].modularity < \
            recs[g]["gve"].modularity - 0.2, g

    # (d): the guaranteed implementations have zero disconnected
    # communities; NetworKit has a nonzero fraction somewhere.
    for g in result.graphs:
        for impl in ("gve", "original", "igraph"):
            assert recs[g][impl].disconnected_fraction == 0.0, (g, impl)
    assert any(
        recs[g]["networkit"].disconnected_fraction > 0
        for g in result.graphs
    )

    # cuGraph OOM pattern matches the paper exactly.
    oom = {g for g in result.graphs if not recs[g]["cugraph"].ok}
    assert oom == PAPER_OOM
